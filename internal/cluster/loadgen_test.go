package cluster

import (
	"testing"
	"time"

	"github.com/epicscale/sgl/internal/metrics"
	"github.com/epicscale/sgl/internal/server"
)

// TestLoadGenTwoNodesThroughGateway is the scale-out acceptance run:
// the stock load generator pointed at a gateway over two nodes drives
// twice the single-node acceptance world count (16 vs the 8 of
// TestLoadGenEightWorlds) with spectators and actors per world — every
// world must tick, serve queries and accept commands error-free, and
// placement must actually use both nodes.
func TestLoadGenTwoNodesThroughGateway(t *testing.T) {
	g, gw, nodes := newCluster(t, 2)

	// Under -race everything runs several times slower; a window sized
	// for the bare build starves the last-created worlds of their first
	// spectator query on a small machine.
	window := 1200 * time.Millisecond
	if raceEnabled {
		window = 5 * time.Second
	}
	rows, err := server.LoadGen(server.LoadGenConfig{
		BaseURL:    gw.URL,
		Worlds:     16,
		Units:      96,
		Density:    0.02,
		Seed:       1,
		TickRate:   10,
		Spectators: 1,
		Actors:     1,
		Duration:   window,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 {
		t.Fatalf("rows = %d, want 16", len(rows))
	}
	for _, r := range rows {
		if r.Errors != 0 || r.CmdErrors != 0 {
			t.Errorf("world %s: %d query errors, %d command errors", r.World, r.Errors, r.CmdErrors)
		}
		if r.Ticks <= 0 {
			t.Errorf("world %s never ticked", r.World)
		}
		if r.Queries <= 0 {
			t.Errorf("world %s served no queries", r.World)
		}
	}

	// Placement spread the fleet: both nodes host worlds. (The loadgen
	// deleted its sessions on teardown, so count placements, not
	// survivors.)
	for _, ns := range g.NodeStatuses() {
		placed := g.Metrics.Counter("sglgw_placements_total", metrics.L("node", ns.Name)).Value()
		if placed == 0 {
			t.Errorf("node %s received no placements out of 16 worlds", ns.Name)
		}
	}
	for i, n := range nodes {
		if got := len(n.reg.List()); got != 0 {
			t.Errorf("node %d still hosts %d worlds after loadgen teardown", i, got)
		}
	}
}
