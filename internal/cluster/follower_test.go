package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"github.com/epicscale/sgl/internal/engine"
	"github.com/epicscale/sgl/internal/server"
)

// writerTraffic drives deterministic command+step traffic against a
// writer session over HTTP, one batch per tick. The spawn guarantees
// every tick changes `sum(e.health)` — a set on an existing unit can be
// a no-op once the battle reaches its fixed point and the target is
// dead, which would starve change-driven push subscriptions.
func writerTraffic(t *testing.T, base, name string, fromTick, ticks int) {
	t.Helper()
	for i := 0; i < ticks; i++ {
		tick := fromTick + i
		if code := do(t, http.MethodPost, base+"/v1/sessions/"+name+"/commands", server.CommandsRequest{
			Origin: "actor",
			Commands: []server.WireCommand{
				{Op: "spawn", Key: int64(100000 + tick), Player: tick % 2, X: float64(5 * tick), Y: 3},
				{Op: "set", Key: int64((tick * 5) % 100), Col: "health", Val: float64(45 + tick)},
			},
		}, nil); code != http.StatusOK {
			t.Fatalf("commands at tick %d: %d", tick, code)
		}
		if code := do(t, http.MethodPost, base+"/v1/sessions/"+name+"/step", server.StepRequest{Ticks: 1}, nil); code != http.StatusOK {
			t.Fatalf("step at tick %d: %d", tick, code)
		}
	}
}

// waitCaughtUp polls until the follower's replica reaches the target
// tick.
func waitCaughtUp(t *testing.T, f *Follower, target int64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if f.World().Session().Tick() >= target {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("replica stuck at tick %d, want %d (lastErr %q)", f.World().Session().Tick(), target, f.Err())
}

// TestReplicaMatchesWriter is the replica leg of contract #6: a
// follower bootstrapped from the writer's checkpoint and advanced over
// its streamed journal serves QueryScan* answers — over its own HTTP
// surface — bit-identical to the writer's at the same tick, and its
// checkpoint bytes equal the writer's. The replica runs Workers=4
// against the writer's serial engine (contract #1 stacks; Workers is
// not serialized), and a pending command in the bootstrap stream
// exercises the journal-overlap dedupe.
func TestReplicaMatchesWriter(t *testing.T) {
	writer := newNode(t)
	if code := do(t, http.MethodPost, writer.ts.URL+"/v1/sessions", server.CreateRequest{
		Name: "w", Units: 100, Seed: 11,
	}, nil); code != http.StatusCreated {
		t.Fatalf("create writer: %d", code)
	}
	// A pending command before bootstrap: the checkpoint carries it, and
	// the first journal fetch re-serves it — the replica must not
	// double-apply.
	if code := do(t, http.MethodPost, writer.ts.URL+"/v1/sessions/w/commands", server.CommandsRequest{
		Origin:   "boot",
		Commands: []server.WireCommand{{Op: "set", Key: 2, Col: "health", Val: 70}},
	}, nil); code != http.StatusOK {
		t.Fatalf("pending command: %d", code)
	}

	replicaReg := server.NewRegistry()
	replicaSrv := httptest.NewServer(server.New(replicaReg, t.TempDir()))
	defer func() {
		replicaSrv.Close()
		replicaReg.Close()
	}()
	f, err := StartFollower(FollowerConfig{
		Writer: writer.ts.URL, Session: "w", As: "w",
		Registry: replicaReg,
		Tune:     engine.Options{Workers: 4},
		Wait:     200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Stop()

	writerTraffic(t, writer.ts.URL, "w", 0, 9)
	waitCaughtUp(t, f, 9)

	// The writer is paused (synchronous steps only), the replica caught
	// up: both serve the same tick, so every observation answer and the
	// checkpoint bytes must match exactly.
	queries := []server.QueryRequest{
		{Src: `aggregate Pop(u) := count(*) as n, sum(e.health) as hp, avg(e.posx) as mx over e;`, Scan: true},
		{Src: `aggregate Pop(u) := count(*) as n, sum(e.health) as hp, avg(e.posx) as mx over e;`},
		{Src: `aggregate Near(u, r) := count(*) over e where e.posx >= u.posx - r and e.posx <= u.posx + r;`,
			X: ptr(20.0), Y: ptr(20.0), Args: []float64{15}, Scan: true},
		{Src: `aggregate Mine(u) := count(*), max(e.health) as top over e where e.player = u.player;`,
			Unit: ptrI(3), Scan: true},
	}
	for i, q := range queries {
		var wr, rr server.QueryResponse
		if code := do(t, http.MethodPost, writer.ts.URL+"/v1/sessions/w/query", q, &wr); code != http.StatusOK {
			t.Fatalf("query %d on writer: %d", i, code)
		}
		if code := do(t, http.MethodPost, replicaSrv.URL+"/v1/sessions/w/query", q, &rr); code != http.StatusOK {
			t.Fatalf("query %d on replica: %d", i, code)
		}
		if wr.Tick != rr.Tick {
			t.Fatalf("query %d: writer at tick %d, replica at %d", i, wr.Tick, rr.Tick)
		}
		if fmt.Sprint(wr.Values) != fmt.Sprint(rr.Values) {
			t.Errorf("query %d: writer %v != replica %v (contract #6 replica leg violated)", i, wr.Values, rr.Values)
		}
	}
	wck := fetchCheckpoint(t, writer.ts.URL, "w")
	rck := fetchCheckpoint(t, replicaSrv.URL, "w")
	if !bytes.Equal(wck, rck) {
		t.Error("replica checkpoint differs from writer at the same tick")
	}

	// Push subscriptions served from the replica: a subscriber attached
	// to the replica's own /subscribe sees answers advance as the
	// replication loop replays writer ticks.
	subCtx, subCancel := context.WithCancel(context.Background())
	defer subCancel()
	req, err := http.NewRequestWithContext(subCtx, http.MethodGet,
		replicaSrv.URL+"/v1/sessions/w/subscribe?q="+url.QueryEscape(`aggregate Pop(u) := sum(e.health) over e;`), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events := make(chan server.SubscribeEvent, 16)
	go func() {
		defer close(events)
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if line, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
				var ev server.SubscribeEvent
				if json.Unmarshal([]byte(line), &ev) == nil {
					events <- ev
				}
			}
		}
	}()
	writerTraffic(t, writer.ts.URL, "w", 9, 3)
	waitCaughtUp(t, f, 12)
	sawAdvance := false
	timeout := time.After(5 * time.Second)
	for !sawAdvance {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatal("replica subscription closed early")
			}
			if ev.Tick >= 10 {
				sawAdvance = true
			}
		case <-timeout:
			t.Fatal("replica subscription never pushed a post-bootstrap tick")
		}
	}

	if f.Recoveries() != 0 {
		t.Errorf("recoveries = %d on an uncompacted run", f.Recoveries())
	}
	// Lag must read caught-up on the replica's readyz.
	var ready server.ReadyResponse
	if code := do(t, http.MethodGet, replicaSrv.URL+"/readyz", nil, &ready); code != http.StatusOK {
		t.Fatalf("replica readyz: %d", code)
	}
	if ready.Replicas != 1 || ready.MaxLagTicks != 0 {
		t.Errorf("replica readyz = %+v, want 1 replica at lag 0", ready)
	}
}

func ptr(v float64) *float64 { return &v }
func ptrI(v int64) *int64    { return &v }

// TestReplicaRecoversAfterCompaction pins the 410 path: the replica
// falls behind, the writer compacts past its cursor, the next poll
// comes back 410 Gone, and the follower recovers by re-bootstrapping
// from a fresh checkpoint — after which it matches the writer's bytes
// again. Driven by hand (newFollower + sync) so the fall-behind window
// is deterministic.
func TestReplicaRecoversAfterCompaction(t *testing.T) {
	writer := newNode(t)
	if code := do(t, http.MethodPost, writer.ts.URL+"/v1/sessions", server.CreateRequest{
		Name: "w", Units: 80, Seed: 3,
	}, nil); code != http.StatusCreated {
		t.Fatalf("create writer: %d", code)
	}
	writerTraffic(t, writer.ts.URL, "w", 0, 3)

	replicaReg := server.NewRegistry()
	defer replicaReg.Close()
	f, err := newFollower(FollowerConfig{
		Writer: writer.ts.URL, Session: "w",
		Registry: replicaReg,
		Wait:     50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.cancel()
	if got := f.World().Session().Tick(); got != 3 {
		t.Fatalf("bootstrap at tick %d, want 3", got)
	}

	// The replica sleeps while the writer advances and compacts: its
	// cursor (3) falls below the new journal base.
	writerTraffic(t, writer.ts.URL, "w", 3, 5)
	var cr server.CompactResponse
	if code := do(t, http.MethodPost, writer.ts.URL+"/v1/sessions/w/compact", nil, &cr); code != http.StatusOK {
		t.Fatalf("compact: %d", code)
	}
	if cr.Base <= 3 {
		t.Fatalf("compaction base %d did not pass the replica cursor", cr.Base)
	}

	// One sync: the poll is 410 Gone, recovery fetches a checkpoint and
	// republishes the replica at the writer's tick.
	if err := f.sync(); err != nil {
		t.Fatalf("sync across compaction: %v", err)
	}
	if f.Recoveries() != 1 {
		t.Fatalf("recoveries = %d, want 1", f.Recoveries())
	}
	if got := f.World().Session().Tick(); got != 8 {
		t.Fatalf("recovered replica at tick %d, want 8", got)
	}

	// And the recovered replica still tracks the writer exactly.
	writerTraffic(t, writer.ts.URL, "w", 8, 4)
	if err := f.sync(); err != nil {
		t.Fatal(err)
	}
	var wck, rck bytes.Buffer
	wd, _ := writer.reg.Get("w")
	if err := wd.Checkpoint(&wck); err != nil {
		t.Fatal(err)
	}
	if err := f.World().Checkpoint(&rck); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wck.Bytes(), rck.Bytes()) {
		t.Error("post-recovery replica checkpoint differs from writer")
	}
	if f.Recoveries() != 1 {
		t.Errorf("recoveries = %d after a plain catch-up, want still 1", f.Recoveries())
	}
}

// TestFollowerBootstrapFailsFast pins the synchronous-bootstrap
// contract: a bad writer URL or unknown session surfaces at
// StartFollower, not later in a background loop.
func TestFollowerBootstrapFailsFast(t *testing.T) {
	writer := newNode(t)
	reg := server.NewRegistry()
	defer reg.Close()

	if _, err := StartFollower(FollowerConfig{
		Writer: writer.ts.URL, Session: "nope", Registry: reg,
	}); err == nil {
		t.Error("following an unknown session did not fail")
	}
	if _, err := StartFollower(FollowerConfig{
		Writer: "http://127.0.0.1:1", Session: "w", Registry: reg,
	}); err == nil {
		t.Error("following an unreachable writer did not fail")
	}
	if _, err := StartFollower(FollowerConfig{Session: "w", Registry: reg}); err == nil {
		t.Error("empty writer URL did not fail")
	}
}
