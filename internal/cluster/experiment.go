// The cluster scale-out experiment behind `benchfig -experiment
// cluster`: spin up an in-process fleet of N sgld nodes behind a
// gateway, drive the stock load generator through the gateway at a
// world count proportional to N, and aggregate the per-world rows into
// one metrics.ClusterRow per fleet size. Near-linear ticks/s across
// fleet sizes is the claim: placement spreads the worlds and the
// gateway's proxy hop stays off the critical path.
package cluster

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"github.com/epicscale/sgl/internal/metrics"
	"github.com/epicscale/sgl/internal/server"
)

// ExperimentConfig sizes one scale-out run.
type ExperimentConfig struct {
	// FleetSizes lists the node counts to measure (e.g. {1, 2}). Each
	// fleet hosts WorldsPerNode × size worlds, so per-node load is
	// constant — the scale-out question is whether total throughput
	// follows.
	FleetSizes []int
	// WorldsPerNode × Units × Density × TickRate shape the per-world
	// workload exactly as the sgld load generator does.
	WorldsPerNode int
	Units         int
	Density       float64
	Seed          uint64
	TickRate      float64
	Spectators    int
	Actors        int
	Duration      time.Duration
}

// Experiment measures gateway scale-out for each fleet size.
func Experiment(cfg ExperimentConfig) ([]metrics.ClusterRow, error) {
	rows := make([]metrics.ClusterRow, 0, len(cfg.FleetSizes))
	for _, size := range cfg.FleetSizes {
		row, err := runFleet(cfg, size)
		if err != nil {
			return nil, fmt.Errorf("cluster: fleet of %d: %w", size, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// runFleet builds an in-process fleet (nodes + gateway, loopback HTTP),
// drives the load generator through the gateway, and tears it all down.
func runFleet(cfg ExperimentConfig, size int) (metrics.ClusterRow, error) {
	var row metrics.ClusterRow
	type nodeSrv struct {
		reg *server.Registry
		srv *http.Server
		ln  net.Listener
	}
	nodes := make([]nodeSrv, 0, size)
	defer func() {
		for _, n := range nodes {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			n.srv.Shutdown(ctx)
			cancel()
			n.reg.Close()
		}
	}()
	fleet := make([]Node, 0, size)
	for i := 0; i < size; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return row, err
		}
		reg := server.NewRegistry()
		srv := &http.Server{Handler: server.New(reg, "")}
		go srv.Serve(ln)
		nodes = append(nodes, nodeSrv{reg: reg, srv: srv, ln: ln})
		fleet = append(fleet, Node{Name: fmt.Sprintf("node%d", i), URL: "http://" + ln.Addr().String()})
	}

	gw, err := New(Config{Nodes: fleet, ProbeEvery: time.Hour})
	if err != nil {
		return row, err
	}
	gw.Start()
	defer gw.Close()
	gwLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return row, err
	}
	gwSrv := &http.Server{Handler: gw}
	go gwSrv.Serve(gwLn)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		gwSrv.Shutdown(ctx)
		cancel()
	}()

	lgRows, err := server.LoadGen(server.LoadGenConfig{
		BaseURL:    "http://" + gwLn.Addr().String(),
		Worlds:     cfg.WorldsPerNode * size,
		Units:      cfg.Units,
		Density:    cfg.Density,
		Seed:       cfg.Seed,
		TickRate:   cfg.TickRate,
		Spectators: cfg.Spectators,
		Actors:     cfg.Actors,
		Duration:   cfg.Duration,
	})
	if err != nil {
		return row, err
	}

	row.Nodes, row.Worlds = size, cfg.WorldsPerNode*size
	secs := cfg.Duration.Seconds()
	for _, r := range lgRows {
		row.Ticks += r.Ticks
		row.QPS += r.QPS
		row.CPS += r.CPS
		row.Errors += r.Errors + r.CmdErrors
	}
	if secs > 0 {
		row.TicksPerSec = float64(row.Ticks) / secs
	}
	return row, nil
}
