package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/epicscale/sgl/internal/engine"
	"github.com/epicscale/sgl/internal/game"
	"github.com/epicscale/sgl/internal/server"
)

// FollowerConfig configures one replica world following one writer
// session.
type FollowerConfig struct {
	// Writer is the writer daemon's base URL (or the gateway's — the
	// journal route proxies like any other).
	Writer string
	// Session is the writer-side session name to follow.
	Session string
	// As is the local replica world's name; empty uses Session.
	As string
	// Registry is the local daemon's registry the replica world is
	// published into.
	Registry *server.Registry
	// Tune is the replica engine's restore-time tuning (Workers,
	// Incremental, …). Determinism-neutral by contract #3, so a replica
	// may run different tuning than its writer and still answer
	// byte-identically.
	Tune engine.Options
	// Wait is each journal long-poll's park time (default 5s; the writer
	// caps it at 30s). Smaller means faster shutdown, more requests.
	Wait time.Duration
	// Client is the HTTP client; default has no timeout (long-polls are
	// bounded by Wait server-side, and Stop cancels in-flight requests).
	Client *http.Client
}

// Follower replays one writer session's journal into a local replica
// world: bootstrap from the writer's checkpoint, then loop on
// GET …/journal?since=<local tick>&wait=… and advance the replica
// through every completed writer tick. Contract #5 (replayed ≡ live)
// makes the replica's state — and therefore every Query*/subscribe
// answer it serves — byte-identical to the writer's at the same tick.
//
// When the writer compacts its journal past the replica's cursor the
// poll comes back 410 Gone; the follower recovers by fetching a fresh
// checkpoint and re-publishing the replica from it (its base is by
// construction at or past the compaction base). Subscribers see their
// stream end and reconnect, exactly as they would on a world delete.
type Follower struct {
	cfg  FollowerConfig
	name string

	mu    sync.Mutex
	world *server.World // current replica world; replaced on recovery

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	syncs      atomic.Int64
	recoveries atomic.Int64
	lastErr    atomic.Value // string
}

// StartFollower bootstraps the replica (synchronously, so a bad writer
// URL or name fails fast) and starts the replication loop.
func StartFollower(cfg FollowerConfig) (*Follower, error) {
	f, err := newFollower(cfg)
	if err != nil {
		return nil, err
	}
	go f.loop()
	return f, nil
}

// newFollower validates the config and bootstraps the replica without
// starting the loop — tests drive sync by hand to sequence the
// fall-behind/compact/recover dance deterministically.
func newFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("cluster: follower needs a registry")
	}
	if cfg.Writer == "" || cfg.Session == "" {
		return nil, fmt.Errorf("cluster: follower needs a writer URL and session name")
	}
	if cfg.As == "" {
		cfg.As = cfg.Session
	}
	if cfg.Wait <= 0 {
		cfg.Wait = 5 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	ctx, cancel := context.WithCancel(context.Background())
	f := &Follower{cfg: cfg, name: cfg.As, ctx: ctx, cancel: cancel, done: make(chan struct{})}
	f.lastErr.Store("")
	w, err := f.bootstrap()
	if err != nil {
		cancel()
		return nil, err
	}
	f.world = w
	return f, nil
}

// Name returns the local replica world's name.
func (f *Follower) Name() string { return f.name }

// World returns the current replica world (replaced after a compaction
// recovery — callers should not cache it across recoveries).
func (f *Follower) World() *server.World {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.world
}

// Recoveries counts checkpoint re-bootstraps forced by writer
// compaction (the 410 path).
func (f *Follower) Recoveries() int64 { return f.recoveries.Load() }

// Syncs counts journal polls that completed (with or without progress).
func (f *Follower) Syncs() int64 { return f.syncs.Load() }

// Err returns the last replication error ("" when healthy). Transient:
// the loop keeps retrying until Stop.
func (f *Follower) Err() string { return f.lastErr.Load().(string) }

// Stop halts the replication loop (canceling any parked long-poll) and
// removes the replica world from the registry.
func (f *Follower) Stop() {
	f.cancel()
	<-f.done
	f.cfg.Registry.Delete(f.name)
}

// bootstrap fetches the writer's checkpoint and publishes the replica
// world from it.
func (f *Follower) bootstrap() (*server.World, error) {
	req, err := http.NewRequestWithContext(f.ctx, http.MethodGet,
		f.cfg.Writer+"/v1/sessions/"+f.cfg.Session+"/checkpoint", nil)
	if err != nil {
		return nil, err
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: follower %s: fetch checkpoint: %w", f.name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: follower %s: fetch checkpoint: status %d", f.name, resp.StatusCode)
	}
	sess, err := engine.Open(resp.Body, game.NewMechanics(), f.cfg.Tune)
	if err != nil {
		return nil, fmt.Errorf("cluster: follower %s: open checkpoint: %w", f.name, err)
	}
	return f.cfg.Registry.RegisterReplica(f.name, sess)
}

// loop drives sync until Stop, backing off briefly on transient errors
// so a writer restart is an outage, not a spin.
func (f *Follower) loop() {
	defer close(f.done)
	for {
		if f.ctx.Err() != nil {
			return
		}
		err := f.sync()
		switch {
		case err == nil:
			f.lastErr.Store("")
		case f.ctx.Err() != nil:
			return
		default:
			f.lastErr.Store(err.Error())
			select {
			case <-f.ctx.Done():
				return
			case <-time.After(200 * time.Millisecond):
			}
		}
	}
}

// sync runs one replication round: long-poll the journal suffix from
// the replica's tick, replay it, update the lag gauge.
func (f *Follower) sync() error {
	w := f.World()
	cursor := w.Session().Tick()
	url := fmt.Sprintf("%s/v1/sessions/%s/journal?since=%d&wait=%s",
		f.cfg.Writer, f.cfg.Session, cursor, f.cfg.Wait)
	req, err := http.NewRequestWithContext(f.ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		// The writer compacted past our cursor: the journal can no longer
		// replay us forward, but a fresh checkpoint can replace us.
		io.Copy(io.Discard, resp.Body)
		return f.recover()
	default:
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("journal poll: status %d", resp.StatusCode)
	}
	var jr server.JournalResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		return fmt.Errorf("journal poll: decode: %w", err)
	}
	// The observed gap, then the residue after replay (0 when caught
	// up): the gauge reads as "how stale is this replica right now".
	w.SetReplicaLag(jr.Tick - cursor)
	if jr.Tick > cursor {
		if err := w.ReplicaAdvance(jr.Tick, jr.Entries); err != nil {
			// Replay must never diverge; if it does (a writer reset, a
			// corrupted transfer), re-bootstrapping from the writer's
			// current state is the only honest recovery.
			f.lastErr.Store(err.Error())
			return f.recover()
		}
	}
	w.SetReplicaLag(jr.Tick - w.Session().Tick())
	f.syncs.Add(1)
	return nil
}

// recover replaces the replica world with one opened from the writer's
// current checkpoint. Re-publishing (delete + register) rather than
// swapping in place keeps the replica-world invariants trivial; the
// cost is that subscribers reconnect, which they already handle for
// world deletes.
func (f *Follower) recover() error {
	f.cfg.Registry.Delete(f.name)
	w, err := f.bootstrap()
	if err != nil {
		return fmt.Errorf("recover after compaction: %w", err)
	}
	f.mu.Lock()
	f.world = w
	f.mu.Unlock()
	f.recoveries.Add(1)
	return nil
}
