package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/epicscale/sgl/internal/metrics"
	"github.com/epicscale/sgl/internal/server"
)

// Config configures a Gateway.
type Config struct {
	// Nodes is the static fleet, at least one entry. Node names feed the
	// rendezvous hash, so renaming a node reshuffles future placements
	// (existing routes are unaffected — they are pinned by name).
	Nodes []Node
	// ProbeEvery is the health probe cadence (default 2s).
	ProbeEvery time.Duration
	// Client is the control-plane HTTP client (probes, migration
	// transfers, route discovery). Defaults to a 30s-timeout client; the
	// data-plane proxying uses each node's ReverseProxy transport and is
	// unaffected by this timeout.
	Client *http.Client
}

// Gateway places sessions on a fleet of sgld nodes and proxies the
// whole /v1/sessions tree to the owning node, so clients speak to a
// cluster exactly as they would to one daemon (contract #6: routed ≡
// direct). It adds only the cluster-control surface: GET /gw/nodes and
// POST /gw/migrate.
type Gateway struct {
	nodes  []*nodeState // fixed, in configured order
	byName map[string]*nodeState
	client *http.Client

	mux *http.ServeMux

	// Metrics is the gateway's own registry (sglgw_* series), served on
	// /metrics. Node daemons keep their own.
	Metrics *metrics.Registry

	rmu    sync.RWMutex
	routes map[string]*route

	nodesAlive  *metrics.Gauge
	routesGauge *metrics.Gauge
	proxiedErrs *metrics.Counter
	migrations  *metrics.Counter
	migrateErrs *metrics.Counter

	probeEvery time.Duration
	stop       chan struct{}
	probeDone  chan struct{}

	startOnce sync.Once
	closeOnce sync.Once
}

// route binds a session name to its owning node. The binding is stable
// except during a live migration, which holds new non-stream requests
// (migrating), drains the in-flight ones (inflight), moves the world,
// and repoints node — so no request ever observes the world on zero or
// two nodes.
type route struct {
	mu        sync.Mutex
	node      *nodeState
	migrating chan struct{} // non-nil while a migration owns the route; closed when released
	// inflight counts proxied non-stream requests. Streams (SSE
	// subscribe, journal long-polls) are excluded: they are long-lived by
	// design and a migration must not wait for them — an open subscribe
	// to the source ends when the source world is deleted, and the
	// client's reconnect lands on the target.
	inflight sync.WaitGroup
}

// acquire returns the route's current node, blocking while a migration
// holds the route. Non-stream requests are counted into inflight; the
// caller must release with the same stream flag.
func (rt *route) acquire(stream bool) *nodeState {
	for {
		rt.mu.Lock()
		ch := rt.migrating
		if ch == nil {
			ns := rt.node
			if !stream {
				rt.inflight.Add(1)
			}
			rt.mu.Unlock()
			return ns
		}
		rt.mu.Unlock()
		<-ch
	}
}

func (rt *route) release(stream bool) {
	if !stream {
		rt.inflight.Done()
	}
}

// New builds a gateway over the configured fleet. Call Start to begin
// health probing (and before serving, so placement has a live view).
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: a gateway needs at least one node")
	}
	g := &Gateway{
		byName:     make(map[string]*nodeState, len(cfg.Nodes)),
		client:     cfg.Client,
		Metrics:    &metrics.Registry{},
		routes:     make(map[string]*route),
		probeEvery: cfg.ProbeEvery,
		stop:       make(chan struct{}),
		probeDone:  make(chan struct{}),
	}
	if g.client == nil {
		g.client = &http.Client{Timeout: 30 * time.Second}
	}
	if g.probeEvery <= 0 {
		g.probeEvery = defaultProbeEvery
	}
	for _, n := range cfg.Nodes {
		if n.Name == "" {
			return nil, fmt.Errorf("cluster: node with url %q needs a name", n.URL)
		}
		if _, dup := g.byName[n.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate node name %q", n.Name)
		}
		ns, err := newNodeState(n)
		if err != nil {
			return nil, err
		}
		g.nodes = append(g.nodes, ns)
		g.byName[n.Name] = ns
	}

	g.Metrics.Help("sglgw_nodes_alive", "Nodes whose last health probe succeeded.")
	g.Metrics.Help("sglgw_routes", "Sessions the gateway currently routes.")
	g.Metrics.Help("sglgw_proxied_total", "Requests proxied, per node.")
	g.Metrics.Help("sglgw_proxy_errors_total", "Proxied requests that failed to reach their node.")
	g.Metrics.Help("sglgw_placements_total", "Sessions placed, per node.")
	g.Metrics.Help("sglgw_migrations_total", "Live migrations completed.")
	g.Metrics.Help("sglgw_migration_errors_total", "Live migrations aborted (source restored).")
	g.nodesAlive = g.Metrics.Gauge("sglgw_nodes_alive")
	g.routesGauge = g.Metrics.Gauge("sglgw_routes")
	g.proxiedErrs = g.Metrics.Counter("sglgw_proxy_errors_total")
	g.migrations = g.Metrics.Counter("sglgw_migrations_total")
	g.migrateErrs = g.Metrics.Counter("sglgw_migration_errors_total")

	g.mux = http.NewServeMux()
	g.mux.HandleFunc("POST /v1/sessions", g.handleCreate)
	g.mux.HandleFunc("GET /v1/sessions", g.handleList)
	g.mux.HandleFunc("/v1/sessions/{name}", g.handleProxy)
	g.mux.HandleFunc("/v1/sessions/{name}/{rest...}", g.handleProxy)
	g.mux.HandleFunc("GET /gw/nodes", g.handleNodes)
	g.mux.HandleFunc("POST /gw/migrate", g.handleMigrate)
	g.mux.HandleFunc("GET /metrics", g.handleMetrics)
	g.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return g, nil
}

// Start probes every node once (synchronously, so the first placement
// sees real liveness) and launches the periodic probe loop.
func (g *Gateway) Start() {
	g.startOnce.Do(func() {
		g.ProbeNow()
		go g.probeLoop()
	})
}

// Close stops the probe loop. Proxied requests in flight complete;
// routed worlds keep running on their nodes.
func (g *Gateway) Close() {
	g.closeOnce.Do(func() {
		close(g.stop)
		g.startOnce.Do(func() { close(g.probeDone) }) // never started: unblock the wait
		<-g.probeDone
	})
}

// ServeHTTP serves the gateway API.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) { g.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// lookup resolves a session's route. On a miss it sweeps the fleet
// (GET /v1/sessions/{name} per alive node) and adopts the first owner
// found — so a restarted gateway relearns its table lazily instead of
// 404ing worlds that are alive and well.
func (g *Gateway) lookup(name string) (*route, bool) {
	g.rmu.RLock()
	rt, ok := g.routes[name]
	g.rmu.RUnlock()
	if ok {
		return rt, true
	}
	for _, ns := range g.nodes {
		if !ns.alive.Load() {
			continue
		}
		resp, err := g.client.Get(ns.node.URL + "/v1/sessions/" + name)
		if err != nil {
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return g.adoptRoute(name, ns), true
		}
	}
	return nil, false
}

// adoptRoute records name → ns, keeping an existing route if a
// concurrent adopter won.
func (g *Gateway) adoptRoute(name string, ns *nodeState) *route {
	g.rmu.Lock()
	defer g.rmu.Unlock()
	if rt, ok := g.routes[name]; ok {
		return rt
	}
	rt := &route{node: ns}
	g.routes[name] = rt
	g.routesGauge.Set(float64(len(g.routes)))
	return rt
}

func (g *Gateway) dropRoute(name string) {
	g.rmu.Lock()
	delete(g.routes, name)
	g.routesGauge.Set(float64(len(g.routes)))
	g.rmu.Unlock()
}

// isStream reports whether a request opens a long-lived response: SSE
// subscriptions and journal long-polls. Streams bypass the migration
// inflight count (a migration cannot wait for them to end).
func isStream(r *http.Request) bool {
	if strings.HasSuffix(r.URL.Path, "/subscribe") {
		return true
	}
	return strings.HasSuffix(r.URL.Path, "/journal") && r.URL.Query().Get("wait") != ""
}

// statusRecorder captures the proxied status code so the gateway can
// maintain its route table from the node's answer (e.g. drop the route
// after a successful DELETE).
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

// Flush forwards flushes so SSE still streams through the recorder.
func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// handleProxy forwards any /v1/sessions/{name}[/...] request to the
// owning node, holding the route stable against concurrent migration.
func (g *Gateway) handleProxy(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	rt, ok := g.lookup(name)
	if !ok {
		writeErr(w, http.StatusNotFound, "gateway: no session %q on any node", name)
		return
	}
	stream := isStream(r)
	ns := rt.acquire(stream)
	defer rt.release(stream)

	rec := &statusRecorder{ResponseWriter: w}
	g.Metrics.Counter("sglgw_proxied_total", metrics.L("node", ns.node.Name)).Inc()
	ns.proxy.ServeHTTP(rec, r)

	// A successful DELETE of the session itself retires the route and
	// releases the node's load slot.
	if r.Method == http.MethodDelete && r.URL.Path == "/v1/sessions/"+name &&
		rec.status >= 200 && rec.status < 300 {
		g.dropRoute(name)
		ns.worlds.Add(-1)
	}
}

// handleCreate is the placement point: it decodes just enough of the
// create body to learn the session name, picks a node (rendezvous order,
// least-loaded tie-break, dead nodes skipped), forwards the request
// verbatim, and records the route on success.
func (g *Gateway) handleCreate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeErr(w, http.StatusRequestEntityTooLarge, "gateway: create body: %v", err)
		return
	}
	var req struct {
		Name string `json:"name"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "gateway: create body: %v", err)
		return
	}
	if req.Name == "" {
		writeErr(w, http.StatusBadRequest, "gateway: create needs a session name")
		return
	}

	// An existing route pins the name to its node: forward there and let
	// the node answer (409 if the world exists; a re-create after an
	// out-of-band delete lands on the same node, keeping the route true).
	g.rmu.RLock()
	rt, routed := g.routes[req.Name]
	g.rmu.RUnlock()
	var ns *nodeState
	if routed {
		ns = rt.acquire(false)
		defer rt.release(false)
	} else {
		candidates := g.place(req.Name)
		if len(candidates) == 0 {
			writeErr(w, http.StatusServiceUnavailable, "gateway: no alive node to place %q on", req.Name)
			return
		}
		ns = candidates[0]
	}

	resp, err := g.client.Post(ns.node.URL+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		g.proxiedErrs.Inc()
		writeErr(w, http.StatusBadGateway, "gateway: node %s: %v", ns.node.Name, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusCreated && !routed {
		g.adoptRoute(req.Name, ns)
		ns.worlds.Add(1)
		g.Metrics.Counter("sglgw_placements_total", metrics.L("node", ns.node.Name)).Inc()
	}
	copyResponse(w, resp)
}

// copyResponse relays a node's response (headers, status, body) to the
// client.
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// handleList merges every alive node's session list, sorted by name —
// the same shape one daemon serves, fleet-wide.
func (g *Gateway) handleList(w http.ResponseWriter, _ *http.Request) {
	type result struct {
		statuses []server.Status
		err      error
	}
	results := make([]result, len(g.nodes))
	var wg sync.WaitGroup
	for i, ns := range g.nodes {
		if !ns.alive.Load() {
			continue
		}
		wg.Add(1)
		go func(i int, ns *nodeState) {
			defer wg.Done()
			resp, err := g.client.Get(ns.node.URL + "/v1/sessions")
			if err != nil {
				results[i].err = err
				return
			}
			defer resp.Body.Close()
			results[i].err = json.NewDecoder(resp.Body).Decode(&results[i].statuses)
		}(i, ns)
	}
	wg.Wait()
	merged := make([]server.Status, 0, 8)
	for _, res := range results {
		if res.err == nil {
			merged = append(merged, res.statuses...)
		}
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].Name < merged[j].Name })
	writeJSON(w, http.StatusOK, merged)
}

// handleNodes reports the fleet: configuration, liveness, load.
func (g *Gateway) handleNodes(w http.ResponseWriter, _ *http.Request) {
	statuses := make([]NodeStatus, 0, len(g.nodes))
	for _, ns := range g.nodes {
		statuses = append(statuses, ns.status())
	}
	writeJSON(w, http.StatusOK, statuses)
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	g.Metrics.WritePrometheus(w)
}

// NodeStatuses snapshots the fleet for embedders (the sglgw loadgen
// report and tests); the HTTP surface is GET /gw/nodes.
func (g *Gateway) NodeStatuses() []NodeStatus {
	statuses := make([]NodeStatus, 0, len(g.nodes))
	for _, ns := range g.nodes {
		statuses = append(statuses, ns.status())
	}
	return statuses
}

// RouteOf reports which node currently owns a session (tests and the
// migration CLI use it; clients never need to know).
func (g *Gateway) RouteOf(session string) (string, bool) {
	g.rmu.RLock()
	defer g.rmu.RUnlock()
	rt, ok := g.routes[session]
	if !ok {
		return "", false
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.node.node.Name, true
}
