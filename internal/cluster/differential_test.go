package cluster

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/url"
	"sync"
	"testing"

	"github.com/epicscale/sgl/internal/exec"
	"github.com/epicscale/sgl/internal/game"
	"github.com/epicscale/sgl/internal/server"
)

// TestRoutedMatchesDirect is the sixth exactness contract: routed ≡
// direct. A world created, commanded, stepped, spectated and subscribed
// to entirely through the sglgw gateway (two nodes behind it) must
// checkpoint byte-identically to the same traffic sent straight at a
// single daemon. The gateway adds routing, not semantics: if proxying
// ever reordered, dropped, duplicated or mangled a request — or if
// placement ever leaked into world state — the bytes would diverge.
//
// It runs the battle script plus every zoo program over a
// Workers {1,4} × Incremental {off,on} matrix. With Incremental off the
// routed side runs Workers=4 against the direct side's Workers=1,
// stacking contract #6 on #1 (parallel ≡ serial) and #4 (served ≡
// standalone). With Incremental on, Workers is held equal across the
// pair: checkpoint bytes carry the maintenance counters
// (MaintainTicks/DirtyRows), and whether maintenance engages on a tick
// depends on which index structures the previous tick happened to build
// — the serial path builds lazily, the parallel path freezes everything
// — so those counters are Workers-sensitive by design (the repo's other
// incremental differentials compare environments across Workers, never
// checkpoint bytes).
func TestRoutedMatchesDirect(t *testing.T) {
	const (
		units   = 120
		density = 0.02
		seed    = 17
		ticks   = 8
	)

	scripts := []struct{ name, src string }{{"battle", game.Script}}
	for _, z := range exec.Zoo {
		scripts = append(scripts, struct{ name, src string }{z.Name, z.Src})
	}
	combos := []struct {
		directW, routedW int
		inc              bool
	}{
		{1, 4, false}, // cross-Workers: stacks contract #1 on #6
		{1, 1, true},  // incremental, serial decide path
		{4, 4, true},  // incremental, parallel decide path
	}

	for _, sc := range scripts {
		for _, cb := range combos {
			t.Run(fmt.Sprintf("%s/w=%dv%d/inc=%v", sc.name, cb.directW, cb.routedW, cb.inc), func(t *testing.T) {
				direct := newNode(t)
				directCk := runTraffic(t, direct.ts.URL, sc.src, trafficConfig{
					units: units, density: density, seed: seed, ticks: ticks,
					workers: cb.directW, incremental: cb.inc,
				})

				_, gw, _ := newCluster(t, 2)
				routedCk := runTraffic(t, gw.URL, sc.src, trafficConfig{
					units: units, density: density, seed: seed, ticks: ticks,
					workers: cb.routedW, incremental: cb.inc,
				})

				if !bytes.Equal(directCk, routedCk) {
					t.Errorf("%s workers=%d/%d inc=%v: routed checkpoint differs from direct (contract #6 violated)",
						sc.name, cb.directW, cb.routedW, cb.inc)
				}
			})
		}
	}
}

type trafficConfig struct {
	units       int
	density     float64
	seed        uint64
	ticks       int
	workers     int
	incremental bool
}

// runTraffic drives one world through a base URL — gateway or daemon,
// the traffic cannot tell — with deterministic command injection at
// every tick boundary, racing spectator queries, and a live SSE
// subscription, then returns its checkpoint bytes.
func runTraffic(t *testing.T, base, src string, cfg trafficConfig) []byte {
	t.Helper()
	const name = "world"
	code := do(t, http.MethodPost, base+"/v1/sessions", server.CreateRequest{
		Name: name, Script: src,
		Units: cfg.units, Density: cfg.density, Seed: cfg.seed,
		Workers: cfg.workers, Incremental: cfg.incremental,
	}, nil)
	if code != http.StatusCreated {
		t.Fatalf("create via %s: %d", base, code)
	}

	// One SSE subscription held across the whole run: subscribe traffic
	// must flow through the same hop and must not perturb the bytes.
	subCtx, subCancel := context.WithCancel(context.Background())
	defer subCancel()
	subReq, err := http.NewRequestWithContext(subCtx, http.MethodGet,
		base+"/v1/sessions/"+name+"/subscribe?q="+url.QueryEscape(`aggregate Pop(u) := count(*) over e;`), nil)
	if err != nil {
		t.Fatal(err)
	}
	subResp, err := http.DefaultClient.Do(subReq)
	if err != nil {
		t.Fatal(err)
	}
	defer subResp.Body.Close()
	if subResp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe via %s: %d", base, subResp.StatusCode)
	}
	subDone := make(chan struct{})
	go func() {
		defer close(subDone)
		sc := bufio.NewScanner(subResp.Body)
		for sc.Scan() {
		} // drain until canceled; events themselves are pinned elsewhere
	}()

	// Racing spectators: reads must not perturb the world.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, req := range []server.QueryRequest{
		{Src: `aggregate Pop(u) := count(*) as n, sum(e.health) as hp over e;`},
		{Src: `aggregate Pop(u) := count(*) as n, sum(e.health) as hp over e;`, Scan: true},
	} {
		wg.Add(1)
		go func(req server.QueryRequest) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := try(http.MethodPost, base+"/v1/sessions/"+name+"/query", req, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(req)
	}

	// Deterministic command traffic: a batch before every step, stamped
	// by the synchronous request/step alternation into identical
	// (tick, origin, seq) order on both sides of the differential.
	for tick := 0; tick < cfg.ticks; tick++ {
		cmds := []server.WireCommand{
			{Op: "set", Key: int64((tick * 7) % cfg.units), Col: "health", Val: float64(40 + tick)},
		}
		if tick%3 == 1 {
			cmds = append(cmds, server.WireCommand{Op: "despawn", Key: int64((tick * 11) % cfg.units)})
		}
		if tick%4 == 2 {
			cmds = append(cmds, server.WireCommand{Op: "set", Key: int64(tick % cfg.units), Col: "posx", Val: float64(3 * tick)})
		}
		if code := do(t, http.MethodPost, base+"/v1/sessions/"+name+"/commands", server.CommandsRequest{
			Origin: "actor", Commands: cmds,
		}, nil); code != http.StatusAccepted && code != http.StatusOK {
			t.Fatalf("commands via %s at tick %d: %d", base, tick, code)
		}
		if code := do(t, http.MethodPost, base+"/v1/sessions/"+name+"/step", server.StepRequest{Ticks: 1}, nil); code != http.StatusOK {
			t.Fatalf("step via %s at tick %d: %d", base, tick, code)
		}
	}
	close(stop)
	wg.Wait()
	subCancel()
	<-subDone

	return fetchCheckpoint(t, base, name)
}
