//go:build race

package cluster

// raceEnabled reports whether the race detector is compiled in, so
// wall-clock-sensitive tests can widen their measurement windows —
// everything runs several times slower under -race, and on a small
// machine a fixed window can starve late-created worlds.
const raceEnabled = true
