package cluster

import (
	"bufio"
	"context"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/epicscale/sgl/internal/server"
)

// TestGatewayRoutesAndAdopts pins the route-table mechanics: creates
// place and route, unknown names 404, deletes retire routes, the fleet
// list merges, and a world created behind the gateway's back is adopted
// on first touch (a restarted gateway relearns its table lazily).
func TestGatewayRoutesAndAdopts(t *testing.T) {
	g, gw, nodes := newCluster(t, 2)

	if code := do(t, http.MethodGet, gw.URL+"/v1/sessions/ghost", nil, nil); code != http.StatusNotFound {
		t.Errorf("unknown session via gateway: %d, want 404", code)
	}

	var st server.Status
	if code := do(t, http.MethodPost, gw.URL+"/v1/sessions", server.CreateRequest{Name: "alpha", Units: 64}, &st); code != http.StatusCreated {
		t.Fatalf("create via gateway: %d", code)
	}
	owner, ok := g.RouteOf("alpha")
	if !ok {
		t.Fatal("no route recorded for alpha")
	}
	// The route must point at the node that actually owns the world.
	idx := map[string]int{"node0": 0, "node1": 1}[owner]
	if _, found := nodes[idx].reg.Get("alpha"); !found {
		t.Fatalf("route says %s but that node does not have the world", owner)
	}

	// Proxied reads and writes reach it.
	if code := do(t, http.MethodPost, gw.URL+"/v1/sessions/alpha/step", server.StepRequest{Ticks: 2}, &st); code != http.StatusOK {
		t.Fatalf("step via gateway: %d", code)
	}
	if code := do(t, http.MethodGet, gw.URL+"/v1/sessions/alpha", nil, &st); code != http.StatusOK || st.Tick != 2 {
		t.Fatalf("status via gateway: code %d, tick %d", code, st.Tick)
	}

	// A duplicate create forwards to the owner and relays its 409.
	if code := do(t, http.MethodPost, gw.URL+"/v1/sessions", server.CreateRequest{Name: "alpha", Units: 64}, nil); code != http.StatusConflict {
		t.Errorf("duplicate create via gateway: %d, want 409", code)
	}

	// Out-of-band world (created directly on a node): the gateway adopts
	// it on first touch.
	direct := nodes[1]
	if _, err := direct.reg.Create("oob", server.WorldSpec{Units: 64}); err != nil {
		t.Fatal(err)
	}
	if code := do(t, http.MethodGet, gw.URL+"/v1/sessions/oob", nil, &st); code != http.StatusOK {
		t.Fatalf("adopt-on-miss: %d", code)
	}
	if owner, ok := g.RouteOf("oob"); !ok || owner != "node1" {
		t.Errorf("adopted route = %q, %v; want node1", owner, ok)
	}

	// The merged list sees both worlds, sorted.
	var list []server.Status
	if code := do(t, http.MethodGet, gw.URL+"/v1/sessions", nil, &list); code != http.StatusOK {
		t.Fatalf("list via gateway: %d", code)
	}
	if len(list) != 2 || list[0].Name != "alpha" || list[1].Name != "oob" {
		t.Errorf("merged list = %+v", list)
	}

	// Deletes retire the route.
	if code := do(t, http.MethodDelete, gw.URL+"/v1/sessions/alpha", nil, nil); code != http.StatusOK {
		t.Fatalf("delete via gateway: %d", code)
	}
	if _, ok := g.RouteOf("alpha"); ok {
		t.Error("route survived the delete")
	}
}

// TestPlacementSpreadsAndSkipsDead pins the placement function:
// rendezvous order is deterministic, a fleet of two shares a standard
// loadgen-style population non-degenerately, and a dead node receives
// nothing.
func TestPlacementSpreadsAndSkipsDead(t *testing.T) {
	g, _, _ := newCluster(t, 2)

	counts := map[string]int{}
	for i := 0; i < 32; i++ {
		names := g.place("loadgen-" + string(rune('a'+i%26)) + string(rune('0'+i/26)))
		if len(names) != 2 {
			t.Fatalf("place returned %d nodes, want 2", len(names))
		}
		counts[names[0].node.Name]++
		// Determinism: the same session always gets the same order.
		again := g.place("loadgen-" + string(rune('a'+i%26)) + string(rune('0'+i/26)))
		if again[0] != names[0] || again[1] != names[1] {
			t.Fatal("placement order is not deterministic")
		}
	}
	if counts["node0"] == 0 || counts["node1"] == 0 {
		t.Errorf("degenerate spread: %v", counts)
	}

	// Kill node1: everything places on node0.
	g.byName["node1"].alive.Store(false)
	for i := 0; i < 8; i++ {
		names := g.place("x" + string(rune('0'+i)))
		if len(names) != 1 || names[0].node.Name != "node0" {
			t.Fatalf("placement with node1 dead = %v", names)
		}
	}
	g.byName["node1"].alive.Store(true)
}

// TestMigrationUnderTraffic is the liveness half of the migration
// guarantee: a world with its clock running is migrated to the other
// node while an actor keeps injecting commands and a subscriber holds
// an SSE stream through the gateway — and afterwards every acknowledged
// command is in the journal, the route points at the target, the source
// world is gone, and the world is still ticking.
func TestMigrationUnderTraffic(t *testing.T) {
	g, gw, nodes := newCluster(t, 2)

	if code := do(t, http.MethodPost, gw.URL+"/v1/sessions", server.CreateRequest{
		Name: "mig", Units: 128, Seed: 7, TickRate: 100,
	}, nil); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	srcName, _ := g.RouteOf("mig")
	srcIdx := map[string]int{"node0": 0, "node1": 1}[srcName]
	dstName := map[string]string{"node0": "node1", "node1": "node0"}[srcName]

	// Actor: inject commands through the gateway as fast as it can,
	// counting acknowledgments. Any non-200 is a lost-command bug — the
	// gateway must hold (not fail) requests while the route migrates.
	var acked atomic.Int64
	stop := make(chan struct{})
	actorDone := make(chan struct{})
	go func() {
		defer close(actorDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			code, err := try(http.MethodPost, gw.URL+"/v1/sessions/mig/commands", server.CommandsRequest{
				Origin:   "actor",
				Commands: []server.WireCommand{{Op: "set", Key: int64(i % 128), Col: "health", Val: float64(30 + i%50)}},
			}, nil)
			if err != nil || code != http.StatusOK {
				t.Errorf("actor command during migration: code %d, err %v", code, err)
				return
			}
			acked.Add(1)
		}
	}()

	// Subscriber: its stream to the source dies when the source world is
	// deleted; reconnecting through the gateway must land on the target
	// and keep delivering events.
	subEvents := func(ctx context.Context) (int, error) {
		// url.QueryEscape matters: a raw ';' in a query string is rejected
		// by net/http and the q pair would be dropped server-side.
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			gw.URL+"/v1/sessions/mig/subscribe?q="+url.QueryEscape(`aggregate Pop(u) := count(*) over e;`), nil)
		if err != nil {
			return 0, err
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("subscribe via gateway: %d", resp.StatusCode)
		}
		n := 0
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if strings.HasPrefix(sc.Text(), "data: ") {
				n++
			}
		}
		return n, nil
	}
	subCtx, subCancel := context.WithCancel(context.Background())
	defer subCancel()
	preEvents := make(chan int, 1)
	go func() {
		n, _ := subEvents(subCtx) // ends when the source world is deleted
		preEvents <- n
	}()

	time.Sleep(300 * time.Millisecond) // let traffic and ticks build up

	var resp *MigrateResponse
	resp, err := g.Migrate(MigrateRequest{Session: "mig", Target: dstName, Workers: 2})
	if err != nil {
		t.Fatalf("migrate: %v", err)
	}
	if resp.From != srcName || resp.To != dstName {
		t.Errorf("migrate moved %s→%s, want %s→%s", resp.From, resp.To, srcName, dstName)
	}

	time.Sleep(300 * time.Millisecond) // traffic continues against the target
	close(stop)
	<-actorDone

	// Route repointed; source world gone; target owns it and is ticking.
	if owner, _ := g.RouteOf("mig"); owner != dstName {
		t.Errorf("route = %s, want %s", owner, dstName)
	}
	if _, found := nodes[srcIdx].reg.Get("mig"); found {
		t.Error("source node still has the world")
	}
	var st server.Status
	if code := do(t, http.MethodGet, gw.URL+"/v1/sessions/mig", nil, &st); code != http.StatusOK {
		t.Fatalf("status after migration: %d", code)
	}
	if !st.Running {
		t.Error("clock did not resume on the target")
	}
	if st.Tick < resp.Tick {
		t.Errorf("target at tick %d, below transfer tick %d", st.Tick, resp.Tick)
	}
	if st.Workers != 2 {
		t.Errorf("restore-time tuning lost: workers = %d, want 2", st.Workers)
	}

	// No acknowledged command lost: stop the clock, drain admission (a
	// checkpoint stamps every queued-but-unapplied command into the
	// journal), then count journal entries from the actor's origin.
	if code := do(t, http.MethodPost, gw.URL+"/v1/sessions/mig/stop", nil, nil); code != http.StatusOK {
		t.Fatalf("stop: %d", code)
	}
	fetchCheckpoint(t, gw.URL, "mig")
	var jr server.JournalResponse
	if code := do(t, http.MethodGet, gw.URL+"/v1/sessions/mig/journal", nil, &jr); code != http.StatusOK {
		t.Fatalf("journal: %d", code)
	}
	fromActor := 0
	for _, e := range jr.Entries {
		if e.Origin == "actor" {
			fromActor++
		}
	}
	// Pending (not yet applied) commands live in the admission buffer
	// and the journal both — Checkpoint drains admission first — so the
	// journal count is exactly the ack count.
	if int64(fromActor) != acked.Load() {
		t.Errorf("journal has %d actor commands, %d were acknowledged", fromActor, acked.Load())
	}

	// The pre-migration subscriber stream ended (source deleted) after
	// delivering events; a fresh subscribe reaches the target.
	subCancel()
	select {
	case n := <-preEvents:
		if n == 0 {
			t.Error("subscriber saw no events before/through the migration")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pre-migration subscriber never ended")
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel2()
	if n, err := subEvents(ctx2); err == nil && n == 0 {
		t.Error("fresh subscription to the migrated world delivered nothing")
	}

	// Migrating a session with no route is a clean error.
	if _, err := g.Migrate(MigrateRequest{Session: "ghost"}); err == nil {
		t.Error("migrating an unknown session did not fail")
	}
}
