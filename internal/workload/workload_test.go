package workload

import (
	"math"
	"testing"

	"github.com/epicscale/sgl/internal/game"
)

func TestSideFromDensity(t *testing.T) {
	s := Spec{Units: 100, Density: 0.01}
	if got := s.Side(); got != 100 {
		t.Fatalf("Side = %v, want 100 (100 units at 1%%)", got)
	}
	s = Spec{Units: 400, Density: 0.04}
	if got := s.Side(); got != 100 {
		t.Fatalf("Side = %v, want 100", got)
	}
	if got := (Spec{Units: 100}).Side(); got != 100 {
		t.Fatalf("default density should be 1%%: side = %v", got)
	}
}

func TestGenerateBasics(t *testing.T) {
	env := Generate(Spec{Units: 120, Density: 0.01, Seed: 1})
	if env.Len() != 120 {
		t.Fatalf("units = %d", env.Len())
	}
	if !env.Keyed() {
		t.Fatal("generated army must be keyed")
	}
	s := env.Schema
	players := map[float64]int{}
	types := map[float64]int{}
	positions := map[[2]float64]bool{}
	side := (Spec{Units: 120, Density: 0.01}).Side()
	for _, row := range env.Rows {
		players[row[s.MustCol("player")]]++
		types[row[s.MustCol("unittype")]]++
		x, y := row[s.MustCol("posx")], row[s.MustCol("posy")]
		if x < 0 || x >= side || y < 0 || y >= side {
			t.Fatalf("position out of bounds: %v,%v", x, y)
		}
		if x != math.Floor(x) || y != math.Floor(y) {
			t.Fatalf("positions must sit on grid squares: %v,%v", x, y)
		}
		key := [2]float64{x, y}
		if positions[key] {
			t.Fatalf("two units share square %v", key)
		}
		positions[key] = true
		if row[s.MustCol("health")] != row[s.MustCol("maxhealth")] {
			t.Fatal("units should start at full health")
		}
	}
	if players[0] != 60 || players[1] != 60 {
		t.Fatalf("player split = %v", players)
	}
	// Default mix 3:2:1 over 6 → half knights, third archers, sixth healers.
	if types[game.Knight] < types[game.Archer] || types[game.Archer] < types[game.Healer] {
		t.Fatalf("type mix = %v", types)
	}
	if types[game.Healer] == 0 {
		t.Fatal("no healers generated")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Spec{Units: 50, Density: 0.02, Seed: 7})
	b := Generate(Spec{Units: 50, Density: 0.02, Seed: 7})
	if !a.EqualContents(b) {
		t.Fatal("same seed should generate the same army")
	}
	c := Generate(Spec{Units: 50, Density: 0.02, Seed: 8})
	if a.EqualContents(c) {
		t.Fatal("different seeds should generate different armies")
	}
}

func TestBattleLinesSeparatesArmies(t *testing.T) {
	env := Generate(Spec{Units: 200, Density: 0.02, Formation: BattleLines, Seed: 3})
	s := env.Schema
	side := (Spec{Units: 200, Density: 0.02}).Side()
	for _, row := range env.Rows {
		x := row[s.MustCol("posx")]
		if row[s.MustCol("player")] == 0 && x > side/3 {
			t.Fatalf("player 0 unit at x=%v beyond left band", x)
		}
		if row[s.MustCol("player")] == 1 && x < side-2-side/3 {
			t.Fatalf("player 1 unit at x=%v before right band", x)
		}
	}
}

func TestCustomMix(t *testing.T) {
	env := Generate(Spec{Units: 60, Density: 0.01, Seed: 2, Mix: [3]int{0, 1, 0}})
	s := env.Schema
	for _, row := range env.Rows {
		if row[s.MustCol("unittype")] != game.Archer {
			t.Fatal("mix {0,1,0} should generate only archers")
		}
	}
}
