// Package workload generates the initial armies for the experiments of
// paper Section 6. The key knob is *density*: the paper varies the number
// of units while sizing the playing grid so that a constant fraction of
// grid squares is occupied (1% for Figure 10), and separately varies
// density at fixed unit count (0.5%–8%).
package workload

import (
	"math"

	"github.com/epicscale/sgl/internal/game"
	"github.com/epicscale/sgl/internal/geom"
	"github.com/epicscale/sgl/internal/index/grid"
	"github.com/epicscale/sgl/internal/rng"
	"github.com/epicscale/sgl/internal/table"
)

// Formation selects the initial spatial arrangement.
type Formation int

// Formations.
const (
	// Scattered places units uniformly at random — the paper's setup.
	Scattered Formation = iota
	// BattleLines places the two armies in opposing clustered bands, the
	// configuration that stresses overlap-heavy aggregates.
	BattleLines
)

// Spec describes one army-generation request.
type Spec struct {
	Units     int
	Density   float64 // fraction of grid squares occupied, e.g. 0.01
	Formation Formation
	Seed      uint64
	// Mix is the unit-type distribution (knight, archer, healer) as
	// weights; zero value means the default 3:2:1.
	Mix [3]int
}

// Side returns the grid edge length implied by the spec: units/density
// squares total.
func (s Spec) Side() float64 {
	d := s.Density
	if d <= 0 {
		d = 0.01
	}
	return math.Ceil(math.Sqrt(float64(s.Units) / d))
}

// Generate builds the initial environment table for a spec. Units split
// evenly between the two players; positions are distinct grid squares
// (one unit per square, like the engine's collision rule).
func Generate(spec Spec) *table.Table {
	side := spec.Side()
	mix := spec.Mix
	if mix == [3]int{} {
		mix = [3]int{3, 2, 1}
	}
	totalMix := mix[0] + mix[1] + mix[2]

	st := rng.NewStream(rng.New(spec.Seed), 99)
	occ := grid.NewOccupancy(spec.Units)
	env := table.New(game.Schema(), spec.Units)

	place := func(key int64, player int) geom.Point {
		for {
			var x, y float64
			switch spec.Formation {
			case BattleLines:
				// Player 0 in the left third, player 1 in the right third,
				// clustered vertically around the middle.
				band := side / 3
				if player == 0 {
					x = math.Floor(st.Float64() * band)
				} else {
					x = math.Floor(side - 1 - st.Float64()*band)
				}
				y = math.Floor(side/4 + st.Float64()*side/2)
			default:
				x = float64(st.Intn(int(side)))
				y = float64(st.Intn(int(side)))
			}
			if occ.Place(x, y, key) {
				return geom.Point{X: x, Y: y}
			}
		}
	}

	for i := 0; i < spec.Units; i++ {
		player := i % 2
		// Deterministic type assignment respecting the mix ratio.
		slot := i / 2 % totalMix
		unitType := game.Knight
		switch {
		case slot >= mix[0]+mix[1]:
			unitType = game.Healer
		case slot >= mix[0]:
			unitType = game.Archer
		}
		pos := place(int64(i), player)
		env.Append(game.NewUnit(int64(i), player, unitType, pos))
	}
	return env
}
