package exec

// ZooProgram is one small SGL program exercising a single language or
// optimizer feature. The zoo is exported (not test-only) so other
// packages' differential suites can reuse it — notably the engine's
// serial-vs-parallel determinism tests, which must hold for every program
// shape, not just the battle simulation.
type ZooProgram struct {
	Name string
	Src  string
}

// Zoo is the script zoo: each program runs for several ticks' worth of
// random environments under every execution path (interpreter+naive,
// plan+naive, plan+indexed, and the engine's sharded parallel executor).
// Any divergence is a bug in translation, optimization, classification,
// an index structure, or the parallel merge order.
//
// The scripts reference only attributes present in both this package's
// test schema and the battle schema (key, player, unittype, posx, posy,
// health, cooldown, damage), so they compile against either.
var Zoo = []ZooProgram{
	{"or-condition-residual", `
aggregate Extremes(u) :=
  count(*)
  over e where (e.health <= 8 or e.health >= 25) and e.player <> u.player;
action Tag(u, v) := on e where e.key = u.key set damage = v;
function main(u) { perform Tag(u, Extremes(u)) }`},

	{"asymmetric-range", `
aggregate Ahead(u) :=
  count(*) as n, sum(e.health) as hp
  over e where e.posx >= u.posx and e.posx <= u.posx + 12
    and e.posy >= u.posy - 3 and e.posy <= u.posy + 3
    and e.player <> u.player;
action Tag(u, v) := on e where e.key = u.key set damage = v;
function main(u) { (let a = Ahead(u)) perform Tag(u, a.n + a.hp / 100) }`},

	{"one-sided-minmax-falls-back", `
aggregate WeakestEast(u) :=
  min(e.health)
  over e where e.posx >= u.posx and e.player <> u.player;
action Tag(u, v) := on e where e.key = u.key set damage = v;
function main(u) {
  (let w = WeakestEast(u)) { if w < 100 then perform Tag(u, w) }
}`},

	{"neq-partition-area-action", `
action Curse(u) :=
  on e where e.player <> u.player
    and e.posx >= u.posx - 5 and e.posx <= u.posx + 5
    and e.posy >= u.posy - 5 and e.posy <= u.posy + 5
  set damage = 1;
function main(u) { if u.cooldown = 0 then perform Curse(u) }`},

	{"mixed-output-classes", `
aggregate Recon(u) :=
  count(*) as n, argmin(e.health) as weak, avg(e.posx) as cx
  over e where e.posx >= u.posx - 10 and e.posx <= u.posx + 10
    and e.posy >= u.posy - 10 and e.posy <= u.posy + 10
    and e.player <> u.player;
action Hit(u, k) := on e where e.key = k and e.health > 0 set damage = 2;
function main(u) {
  (let r = Recon(u)) { if r.n > 0 and r.weak >= 0 then perform Hit(u, r.weak) }
}`},

	{"nested-aggregate-args", `
aggregate Spread(u) :=
  stddev(e.posx)
  over e where e.player = u.player;
aggregate Near(u, rad) :=
  count(*)
  over e where e.posx >= u.posx - rad and e.posx <= u.posx + rad
    and e.posy >= u.posy - rad and e.posy <= u.posy + rad;
action Tag(u, v) := on e where e.key = u.key set damage = v;
function main(u) { perform Tag(u, Near(u, Spread(u) + 1)) }`},

	{"u-only-guard", `
aggregate CountAll(u) :=
  count(*)
  over e where u.cooldown = 0 and e.player <> u.player
    and e.posx >= u.posx - 8 and e.posx <= u.posx + 8
    and e.posy >= u.posy - 8 and e.posy <= u.posy + 8;
action Tag(u, v) := on e where e.key = u.key set damage = v;
function main(u) { perform Tag(u, CountAll(u)) }`},

	{"random-in-action-value", `
action Jolt(u, t) := on e where e.key = t set damage = Random(3) % 4;
aggregate NearestFoe(u) := nearestkey() as key over e where e.player <> u.player;
function main(u) {
  (let t = NearestFoe(u)) { if t >= 0 then perform Jolt(u, t) }
}`},

	{"global-extrema", `
aggregate Best(u) :=
  max(e.health) as top, argmax(e.health) as who,
  min(e.health) as low, argmin(e.health) as frail
  over e where e.player <> u.player;
action Hit(u, k) := on e where e.key = k set damage = 1;
function main(u) {
  (let b = Best(u)) {
    if b.who >= 0 then perform Hit(u, b.who);
    if b.frail >= 0 then perform Hit(u, b.frail)
  }
}`},

	{"multi-conjunct-greedy", `
aggregate Foes(u) :=
  count(*) as n, min(e.health) as low
  over e where e.posx >= u.posx - 9 and e.posx <= u.posx + 9
    and e.posy >= u.posy - 9 and e.posy <= u.posy + 9
    and e.player <> u.player;
action Tag(u, v) := on e where e.key = u.key set damage = v;
function main(u) {
  (let f = Foes(u)) {
    if u.cooldown = 0 and f.n >= 1 and u.health > 3 and u.unittype <> 9 then
      perform Tag(u, f.low);
    if u.cooldown = 1 and u.health > 6 then
      perform Tag(u, f.n)
  }
}`},

	{"empty-world-guards", `
aggregate Foes(u) :=
  count(*)
  over e where e.player <> u.player and e.unittype = 7;
action Tag(u, v) := on e where e.key = u.key set damage = v;
function main(u) { perform Tag(u, Foes(u)) }`},
}
