// Package exec implements the indexed aggregate query evaluator of paper
// Section 5.3 — the counterpart of the naive evaluator in sgl/interp.
//
// A one-time analysis pass classifies every aggregate and action definition
// by inspecting the conjuncts of its WHERE clause (the paper assumes φ is
// conjunctive; anything else falls back to a scan, preserving semantics):
//
//   - join range conjuncts  e.A ≥ t(u) / e.A ≤ t(u): an orthogonal range
//     on attribute A whose bounds depend on the probing unit;
//   - join equality/inequality conjuncts  e.A = t(u) / e.A ≠ t(u) on a
//     categorical attribute: handled by partitioning E on A and probing
//     the matching (or complementary) partitions — the paper's "push
//     selection on player and/or unit type to the top";
//   - e-only conjuncts (no u, no parameters): folded into the partition
//     filter at index build time;
//   - u-only conjuncts: evaluated once per probe; a false value yields the
//     empty-set identities without touching any index;
//   - anything else: residual → the definition is evaluated by scanning.
//
// Outputs are then classified individually: divisible aggregates (count,
// sum, avg, stddev) over ≤2-attribute orthogonal ranges use the layered
// range tree with prefix aggregates; min/max/argmin/argmax use the
// sweep line (batch) or a per-partition scan (single probe); nearest-
// neighbour outputs use the kD-tree; and min/max with no range conjuncts
// at all use a precomputed per-partition global extremum.
package exec

import (
	"github.com/epicscale/sgl/internal/sgl/ast"
	"github.com/epicscale/sgl/internal/sgl/sem"
)

// OutputClass says how one aggregate output column is evaluated by the
// indexed provider.
type OutputClass uint8

// Output classes.
const (
	ClassScan      OutputClass = iota // fallback: O(n) scan per probe
	ClassDivisible                    // layered range tree prefix aggregates
	ClassMinMax                       // sweepline (batch) / partition scan
	ClassNearest                      // kD-tree nearest neighbour
	ClassGlobal                       // per-partition precomputed extremum
)

func (c OutputClass) String() string {
	return [...]string{"scan", "divisible", "minmax", "nearest", "global"}[c]
}

// Bound is one side of an orthogonal range conjunct on an e-attribute:
// e.Attr ≥ Term (lower) or e.Attr ≤ Term (upper), with Term over u,
// parameters and constants only.
type Bound struct {
	Col   int // schema column of the e-attribute
	Lower bool
	Term  ast.Term
}

// EqCond is a join (in)equality conjunct e.Attr = Term or e.Attr ≠ Term
// with Term over u/params/consts.
type EqCond struct {
	Col  int
	Neq  bool
	Term ast.Term
}

// RangeAxis pairs the bounds of one range attribute.
type RangeAxis struct {
	Col    int
	Lo, Hi ast.Term // nil = unbounded on that side
}

// AggAnalysis is the classification of one aggregate definition.
type AggAnalysis struct {
	Def      *ast.AggDef
	UOnly    []ast.Cond  // conjuncts over u/params/consts only
	EOnly    []ast.Cond  // conjuncts over e/consts only (partition filter)
	Eqs      []EqCond    // categorical join conjuncts
	Axes     []RangeAxis // orthogonal range join conjuncts, ≤2 for indexing
	Residual []ast.Cond  // unclassifiable conjuncts (forces scans)
	OutClass []OutputClass
	// Indexable is false when residual conjuncts or >2 range axes force
	// every output to a scan.
	Indexable bool
	// Deps records which schema columns each build-time index component
	// reads; MaintainFrom consults it to decide what a dirty row actually
	// invalidates.
	Deps AggDeps
}

// depMask is a bitset over schema columns. Columns ≥ 63 alias into bit
// 63, which is conservative: an aliased change can only force an extra
// rebuild, never skip a needed one.
type depMask uint64

func colBit(col int) depMask {
	if col > 63 {
		col = 63
	}
	return 1 << col
}

// AggDeps are the per-component build-time column dependencies of an
// indexable aggregate definition. Probe-time terms (axis bounds, eq
// right-hand sides, u-only conjuncts, sweep/scan arguments) evaluate
// against the live environment on every probe and so never appear here.
type AggDeps struct {
	Member depMask // partition membership: eq columns + e-only conjunct columns
	Shape  depMask // range-tree sort keys: the range-axis columns
	Vals   depMask // range-tree payload term columns (divisible outputs)
	KD     depMask // kD-tree point columns (posx/posy) when any nearest output
	Global depMask // global-extremum argument columns
}

// All returns the union of every component mask.
func (d AggDeps) All() depMask {
	return d.Member | d.Shape | d.Vals | d.KD | d.Global
}

// ActDeps are the build-time column dependencies of an area action index.
type ActDeps struct {
	Member depMask
	Shape  depMask
}

// All returns the union of the component masks.
func (d ActDeps) All() depMask { return d.Member | d.Shape }

// ActClass says how an action's target set is computed.
type ActClass uint8

// Action classes.
const (
	ActScan  ActClass = iota // scan all rows
	ActByKey                 // e.key = t(u): direct key lookup
	ActArea                  // categorical eqs + orthogonal range: spatial index
)

func (c ActClass) String() string { return [...]string{"scan", "bykey", "area"}[c] }

// ActAnalysis is the classification of one action definition.
type ActAnalysis struct {
	Def      *ast.ActDef
	Class    ActClass
	KeyTerm  ast.Term // ActByKey: the right-hand side of e.key = t
	UOnly    []ast.Cond
	EOnly    []ast.Cond
	Eqs      []EqCond
	Axes     []RangeAxis
	Residual []ast.Cond
	// Deps mirrors AggAnalysis.Deps for ActArea index maintenance.
	Deps ActDeps
	// Deferrable reports the Section 5.4 condition: an ActArea whose SET
	// values do not reference e, so the per-performer contribution can be
	// computed once and applied to all targets through an effect index.
	Deferrable bool
}

// Analyzer caches per-definition classifications for a program. After
// NewAnalyzer returns, an Analyzer is immutable and safe for concurrent
// use.
type Analyzer struct {
	prog *sem.Program
	aggs map[*ast.AggDef]*AggAnalysis
	acts map[*ast.ActDef]*ActAnalysis
	// Categorical is the set of schema columns eligible for equality
	// partitioning (the paper's player and unit type).
	categorical map[int]bool
}

// NewAnalyzer builds an analyzer. categoricalAttrs names the low-volatility
// attributes used for partitioning (e.g. "player", "unittype"); names not
// in the schema are ignored.
//
// Every definition of the program is classified eagerly here, so the memo
// maps are never written after construction: Agg and Act are read-only and
// safe to call from concurrent shard workers. (Classification is per-
// program, not per-tick, so the eager cost is paid exactly once.)
func NewAnalyzer(prog *sem.Program, categoricalAttrs []string) *Analyzer {
	cat := map[int]bool{}
	for _, name := range categoricalAttrs {
		if col, ok := prog.Schema.Col(name); ok {
			cat[col] = true
		}
	}
	an := &Analyzer{
		prog:        prog,
		aggs:        map[*ast.AggDef]*AggAnalysis{},
		acts:        map[*ast.ActDef]*ActAnalysis{},
		categorical: cat,
	}
	for _, def := range prog.Script.Aggs {
		an.Agg(def)
	}
	for _, def := range prog.Script.Acts {
		an.Act(def)
	}
	return an
}

// Agg returns the (cached) classification of an aggregate definition.
func (an *Analyzer) Agg(def *ast.AggDef) *AggAnalysis {
	if a, ok := an.aggs[def]; ok {
		return a
	}
	a := an.analyzeAgg(def)
	an.aggs[def] = a
	return a
}

// Act returns the (cached) classification of an action definition.
func (an *Analyzer) Act(def *ast.ActDef) *ActAnalysis {
	if a, ok := an.acts[def]; ok {
		return a
	}
	a := an.analyzeAct(def)
	an.acts[def] = a
	return a
}

// refKind classifies which row variables a term mentions.
type refKind struct {
	usesU, usesE, usesParam, usesRandom bool
}

func (an *Analyzer) termRefs(t ast.Term, unitName string, params []string) refKind {
	var r refKind
	var walk func(t ast.Term)
	walk = func(t ast.Term) {
		switch n := t.(type) {
		case *ast.VarRef:
			for _, p := range params[1:] {
				if p == n.Name {
					r.usesParam = true
				}
			}
		case *ast.FieldRef:
			if n.Base == "e" {
				r.usesE = true
			} else if n.Base == unitName {
				r.usesU = true
			}
		case *ast.Field:
			walk(n.X)
		case *ast.Pair:
			walk(n.X)
			walk(n.Y)
		case *ast.Neg:
			walk(n.X)
		case *ast.Binary:
			walk(n.X)
			walk(n.Y)
		case *ast.Call:
			if n.Name == "Random" || n.Name == "random" {
				r.usesRandom = true
			}
			for _, a := range n.Args {
				walk(a)
			}
		}
	}
	walk(t)
	return r
}

func (an *Analyzer) condRefs(c ast.Cond, unitName string, params []string) refKind {
	var r refKind
	var walk func(c ast.Cond)
	walk = func(c ast.Cond) {
		switch n := c.(type) {
		case *ast.Not:
			walk(n.X)
		case *ast.And:
			walk(n.X)
			walk(n.Y)
		case *ast.Or:
			walk(n.X)
			walk(n.Y)
		case *ast.Compare:
			for _, t := range []ast.Term{n.X, n.Y} {
				tr := an.termRefs(t, unitName, params)
				r.usesU = r.usesU || tr.usesU
				r.usesE = r.usesE || tr.usesE
				r.usesParam = r.usesParam || tr.usesParam
				r.usesRandom = r.usesRandom || tr.usesRandom
			}
		}
	}
	walk(c)
	return r
}

// bareEAttr returns the column if t is exactly e.Attr.
func (an *Analyzer) bareEAttr(t ast.Term) (int, bool) {
	fr, ok := t.(*ast.FieldRef)
	if !ok || fr.Base != "e" {
		return 0, false
	}
	col, ok := an.prog.Schema.Col(fr.Field)
	return col, ok
}

// classifyConjunct sorts one conjunct into the analysis buckets shared by
// aggregates and actions. Returns false if the conjunct is residual.
func (an *Analyzer) classifyConjunct(
	c ast.Cond, unitName string, params []string,
	uOnly, eOnly *[]ast.Cond, eqs *[]EqCond, bounds *[]Bound,
) bool {
	refs := an.condRefs(c, unitName, params)
	if refs.usesRandom {
		return false // nondeterministic predicates are never indexed
	}
	if !refs.usesE {
		*uOnly = append(*uOnly, c)
		return true
	}
	if !refs.usesU && !refs.usesParam {
		*eOnly = append(*eOnly, c)
		return true
	}

	// Mixed conjunct: must be a comparison with a bare e-attribute on one
	// side and a u/param/const term on the other.
	cmp, ok := c.(*ast.Compare)
	if !ok {
		return false
	}
	lhsCol, lhsIsE := an.bareEAttr(cmp.X)
	rhsCol, rhsIsE := an.bareEAttr(cmp.Y)
	var col int
	var op ast.CmpOp
	var other ast.Term
	switch {
	case lhsIsE && !an.termRefs(cmp.Y, unitName, params).usesE:
		col, op, other = lhsCol, cmp.Op, cmp.Y
	case rhsIsE && !an.termRefs(cmp.X, unitName, params).usesE:
		// Mirror: t op e.A  ⇒  e.A op' t.
		col, other = rhsCol, cmp.X
		switch cmp.Op {
		case ast.Lt:
			op = ast.Gt
		case ast.Le:
			op = ast.Ge
		case ast.Gt:
			op = ast.Lt
		case ast.Ge:
			op = ast.Le
		default:
			op = cmp.Op
		}
	default:
		return false
	}

	switch op {
	case ast.Eq:
		*eqs = append(*eqs, EqCond{Col: col, Term: other})
	case ast.Ne:
		*eqs = append(*eqs, EqCond{Col: col, Neq: true, Term: other})
	case ast.Ge:
		*bounds = append(*bounds, Bound{Col: col, Lower: true, Term: other})
	case ast.Le:
		*bounds = append(*bounds, Bound{Col: col, Lower: false, Term: other})
	case ast.Gt, ast.Lt:
		// Strict bounds are not produced by the range idiom the games use
		// (the paper's aggregates are all ≥/≤); treat as residual rather
		// than risk off-by-epsilon index probes.
		return false
	}
	return true
}

func groupAxes(bounds []Bound) []RangeAxis {
	var axes []RangeAxis
	find := func(col int) *RangeAxis {
		for i := range axes {
			if axes[i].Col == col {
				return &axes[i]
			}
		}
		axes = append(axes, RangeAxis{Col: col})
		return &axes[len(axes)-1]
	}
	for _, b := range bounds {
		ax := find(b.Col)
		if b.Lower {
			ax.Lo = b.Term
		} else {
			ax.Hi = b.Term
		}
	}
	return axes
}

func (an *Analyzer) analyzeAgg(def *ast.AggDef) *AggAnalysis {
	a := &AggAnalysis{Def: def, Indexable: true}
	var bounds []Bound
	if def.Where != nil {
		for _, c := range ast.Conjuncts(def.Where) {
			if !an.classifyConjunct(c, def.Params[0], def.Params, &a.UOnly, &a.EOnly, &a.Eqs, &bounds) {
				a.Residual = append(a.Residual, c)
			}
		}
	}
	a.Axes = groupAxes(bounds)

	// Equality partitioning requires categorical attributes.
	for _, eq := range a.Eqs {
		if !an.categorical[eq.Col] {
			a.Indexable = false
		}
	}
	if len(a.Residual) > 0 || len(a.Axes) > 2 {
		a.Indexable = false
	}

	a.OutClass = make([]OutputClass, len(def.Outputs))
	for i, out := range def.Outputs {
		a.OutClass[i] = an.classifyOutput(a, out)
	}
	a.Deps = an.aggDeps(a)
	return a
}

// termECols collects the schema columns of every e.Attr reference in t.
func (an *Analyzer) termECols(t ast.Term) depMask {
	var m depMask
	var walk func(t ast.Term)
	walk = func(t ast.Term) {
		switch n := t.(type) {
		case *ast.FieldRef:
			if n.Base == "e" {
				if col, ok := an.prog.Schema.Col(n.Field); ok {
					m |= colBit(col)
				}
			}
		case *ast.Field:
			walk(n.X)
		case *ast.Pair:
			walk(n.X)
			walk(n.Y)
		case *ast.Neg:
			walk(n.X)
		case *ast.Binary:
			walk(n.X)
			walk(n.Y)
		case *ast.Call:
			for _, a := range n.Args {
				walk(a)
			}
		}
	}
	walk(t)
	return m
}

// condECols collects the schema columns of every e.Attr reference in c.
func (an *Analyzer) condECols(c ast.Cond) depMask {
	var m depMask
	var walk func(c ast.Cond)
	walk = func(c ast.Cond) {
		switch n := c.(type) {
		case *ast.Not:
			walk(n.X)
		case *ast.And:
			walk(n.X)
			walk(n.Y)
		case *ast.Or:
			walk(n.X)
			walk(n.Y)
		case *ast.Compare:
			m |= an.termECols(n.X) | an.termECols(n.Y)
		}
	}
	walk(c)
	return m
}

// aggDeps computes the build-time column dependencies of an aggregate's
// index structures from its (already computed) classification.
func (an *Analyzer) aggDeps(a *AggAnalysis) AggDeps {
	var d AggDeps
	for _, eq := range a.Eqs {
		d.Member |= colBit(eq.Col)
	}
	for _, c := range a.EOnly {
		d.Member |= an.condECols(c)
	}
	for _, ax := range a.Axes {
		d.Shape |= colBit(ax.Col)
	}
	for i, out := range a.Def.Outputs {
		switch a.OutClass[i] {
		case ClassDivisible:
			if out.Arg != nil {
				d.Vals |= an.termECols(out.Arg)
			}
		case ClassNearest:
			if px, ok := an.prog.Schema.Col("posx"); ok {
				d.KD |= colBit(px)
			}
			if py, ok := an.prog.Schema.Col("posy"); ok {
				d.KD |= colBit(py)
			}
		case ClassGlobal:
			d.Global |= an.termECols(out.Arg)
		}
	}
	return d
}

func (an *Analyzer) classifyOutput(a *AggAnalysis, out ast.AggOutput) OutputClass {
	if !a.Indexable {
		return ClassScan
	}
	// Output arguments may only reference e and constants if they are to
	// be precomputed into index payloads.
	if out.Arg != nil {
		refs := an.termRefs(out.Arg, a.Def.Params[0], a.Def.Params)
		if refs.usesU || refs.usesParam || refs.usesRandom {
			return ClassScan
		}
	}
	switch out.Func {
	case ast.Count, ast.Sum, ast.Avg, ast.Stddev:
		return ClassDivisible
	case ast.Min, ast.Max, ast.ArgMin, ast.ArgMax:
		if len(a.Axes) == 0 {
			return ClassGlobal
		}
		// The sweep line needs a fully bounded window on every present
		// axis; a one-sided range falls back to the partition scan.
		for _, ax := range a.Axes {
			if ax.Lo == nil || ax.Hi == nil {
				return ClassScan
			}
		}
		return ClassMinMax
	case ast.NearestKey, ast.NearestDist, ast.NearestX, ast.NearestY:
		// The kD-tree answers pure nearest-neighbour queries; a range-
		// restricted nearest (square visibility window) is not the same
		// as a radius-bounded NN, so it falls back to a scan.
		if len(a.Axes) == 0 {
			return ClassNearest
		}
		return ClassScan
	default:
		return ClassScan
	}
}

func (an *Analyzer) analyzeAct(def *ast.ActDef) *ActAnalysis {
	a := &ActAnalysis{Def: def}
	var bounds []Bound
	if def.Where != nil {
		for _, c := range ast.Conjuncts(def.Where) {
			if !an.classifyConjunct(c, def.Params[0], def.Params, &a.UOnly, &a.EOnly, &a.Eqs, &bounds) {
				a.Residual = append(a.Residual, c)
			}
		}
	}
	a.Axes = groupAxes(bounds)

	// Any conjunct of the form e.key = t makes the action a point lookup:
	// the remaining conjuncts (whatever their shape — the d20 scripts put
	// the attack-roll-vs-AC check here) are verified on the single
	// candidate row, which costs O(1).
	keyCol := an.prog.Schema.KeyCol()
	for _, eq := range a.Eqs {
		if eq.Col == keyCol && !eq.Neq {
			a.Class = ActByKey
			a.KeyTerm = eq.Term
			return a
		}
	}

	catsOK := true
	for _, eq := range a.Eqs {
		if !an.categorical[eq.Col] {
			catsOK = false
		}
	}
	if len(a.Residual) == 0 && catsOK && len(a.Axes) >= 1 && len(a.Axes) <= 2 {
		a.Class = ActArea
		for _, eq := range a.Eqs {
			a.Deps.Member |= colBit(eq.Col)
		}
		for _, c := range a.EOnly {
			a.Deps.Member |= an.condECols(c)
		}
		for _, ax := range a.Axes {
			a.Deps.Shape |= colBit(ax.Col)
		}
		a.Deferrable = true
		for _, set := range def.Sets {
			refs := an.termRefs(set.Value, def.Params[0], def.Params)
			// A deferrable contribution must be a pure function of the
			// performer: Random(i) is attributed to the *target* row, so
			// its presence pins the action to the per-target path.
			if refs.usesE || refs.usesRandom {
				a.Deferrable = false
			}
		}
		return a
	}
	a.Class = ActScan
	return a
}
