package exec

import (
	"testing"

	"github.com/epicscale/sgl/internal/algebra"
	"github.com/epicscale/sgl/internal/rng"
	"github.com/epicscale/sgl/internal/sgl/interp"
)

// The script zoo lives in zoo.go (exported as Zoo) so the engine's
// serial-vs-parallel determinism suite can reuse it.

func TestScriptZooDifferential(t *testing.T) {
	for _, tc := range Zoo {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			prog := compile(t, tc.Src)
			an := NewAnalyzer(prog, categoricals())
			for seed := uint64(1); seed <= 3; seed++ {
				env := randomArmy(t, seed, 70, 25)
				r := rng.New(seed).Tick(int64(seed))

				want, err := interp.RunTickNaive(prog, env, r)
				if err != nil {
					t.Fatalf("interp: %v", err)
				}
				planNaive, err := algebra.RunTick(prog, env, interp.NewNaive(prog, env, r), r)
				if err != nil {
					t.Fatalf("plan+naive: %v", err)
				}
				if !planNaive.AlmostEqualContents(want, 1e-9) {
					t.Fatalf("seed %d: plan+naive differs from interpreter", seed)
				}
				planIndexed, err := algebra.RunTick(prog, env, NewIndexed(an, env, r), r)
				if err != nil {
					t.Fatalf("plan+indexed: %v", err)
				}
				if !planIndexed.AlmostEqualContents(want, 1e-9) {
					t.Fatalf("seed %d: plan+indexed differs from interpreter", seed)
				}
			}
		})
	}
}

// The zoo again, but through batch evaluation (the engine's hot path):
// every aggregate of every zoo program answered per-probe and in batch.
func TestScriptZooBatchAgreement(t *testing.T) {
	for _, tc := range Zoo {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			prog := compile(t, tc.Src)
			an := NewAnalyzer(prog, categoricals())
			env := randomArmy(t, 9, 60, 20)
			r := rng.New(9).Tick(3)
			for _, def := range prog.Script.Aggs {
				var args [][]float64
				if len(def.Params) > 1 {
					args = make([][]float64, env.Len())
					for i := range args {
						vals := make([]float64, len(def.Params)-1)
						for j := range vals {
							vals[j] = float64(2 + j)
						}
						args[i] = vals
					}
				}
				batch := NewIndexed(an, env, r).EvalAggBatch(def, env.Rows, args)
				single := NewIndexed(an, env, r)
				for i, u := range env.Rows {
					var arg []float64
					if args != nil {
						arg = args[i]
					}
					want := single.EvalAgg(def, u, arg)
					for j := range want {
						if !almostSame(want[j], batch[i][j]) {
							t.Fatalf("agg %s unit %d out %d: single %v batch %v",
								def.Name, i, j, want[j], batch[i][j])
						}
					}
				}
			}
		})
	}
}

func almostSame(a, b float64) bool {
	if a == b {
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}
