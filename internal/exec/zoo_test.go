package exec

import (
	"testing"

	"github.com/epicscale/sgl/internal/algebra"
	"github.com/epicscale/sgl/internal/rng"
	"github.com/epicscale/sgl/internal/sgl/interp"
)

// The script zoo: one small program per language/optimizer feature, each
// run for several ticks' worth of random environments under all three
// execution paths (interpreter+naive, plan+naive, plan+indexed). Any
// divergence is a bug in translation, optimization, classification, or an
// index structure.
var zoo = []struct {
	name string
	src  string
}{
	{"or-condition-residual", `
aggregate Extremes(u) :=
  count(*)
  over e where (e.health <= 8 or e.health >= 25) and e.player <> u.player;
action Tag(u, v) := on e where e.key = u.key set damage = v;
function main(u) { perform Tag(u, Extremes(u)) }`},

	{"asymmetric-range", `
aggregate Ahead(u) :=
  count(*) as n, sum(e.health) as hp
  over e where e.posx >= u.posx and e.posx <= u.posx + 12
    and e.posy >= u.posy - 3 and e.posy <= u.posy + 3
    and e.player <> u.player;
action Tag(u, v) := on e where e.key = u.key set damage = v;
function main(u) { (let a = Ahead(u)) perform Tag(u, a.n + a.hp / 100) }`},

	{"one-sided-minmax-falls-back", `
aggregate WeakestEast(u) :=
  min(e.health)
  over e where e.posx >= u.posx and e.player <> u.player;
action Tag(u, v) := on e where e.key = u.key set damage = v;
function main(u) {
  (let w = WeakestEast(u)) { if w < 100 then perform Tag(u, w) }
}`},

	{"neq-partition-area-action", `
action Curse(u) :=
  on e where e.player <> u.player
    and e.posx >= u.posx - 5 and e.posx <= u.posx + 5
    and e.posy >= u.posy - 5 and e.posy <= u.posy + 5
  set damage = 1;
function main(u) { if u.cooldown = 0 then perform Curse(u) }`},

	{"mixed-output-classes", `
aggregate Recon(u) :=
  count(*) as n, argmin(e.health) as weak, avg(e.posx) as cx
  over e where e.posx >= u.posx - 10 and e.posx <= u.posx + 10
    and e.posy >= u.posy - 10 and e.posy <= u.posy + 10
    and e.player <> u.player;
action Hit(u, k) := on e where e.key = k and e.health > 0 set damage = 2;
function main(u) {
  (let r = Recon(u)) { if r.n > 0 and r.weak >= 0 then perform Hit(u, r.weak) }
}`},

	{"nested-aggregate-args", `
aggregate Spread(u) :=
  stddev(e.posx)
  over e where e.player = u.player;
aggregate Near(u, rad) :=
  count(*)
  over e where e.posx >= u.posx - rad and e.posx <= u.posx + rad
    and e.posy >= u.posy - rad and e.posy <= u.posy + rad;
action Tag(u, v) := on e where e.key = u.key set damage = v;
function main(u) { perform Tag(u, Near(u, Spread(u) + 1)) }`},

	{"u-only-guard", `
aggregate CountAll(u) :=
  count(*)
  over e where u.cooldown = 0 and e.player <> u.player
    and e.posx >= u.posx - 8 and e.posx <= u.posx + 8
    and e.posy >= u.posy - 8 and e.posy <= u.posy + 8;
action Tag(u, v) := on e where e.key = u.key set damage = v;
function main(u) { perform Tag(u, CountAll(u)) }`},

	{"random-in-action-value", `
action Jolt(u, t) := on e where e.key = t set damage = Random(3) % 4;
aggregate NearestFoe(u) := nearestkey() as key over e where e.player <> u.player;
function main(u) {
  (let t = NearestFoe(u)) { if t >= 0 then perform Jolt(u, t) }
}`},

	{"global-extrema", `
aggregate Best(u) :=
  max(e.health) as top, argmax(e.health) as who,
  min(e.health) as low, argmin(e.health) as frail
  over e where e.player <> u.player;
action Hit(u, k) := on e where e.key = k set damage = 1;
function main(u) {
  (let b = Best(u)) {
    if b.who >= 0 then perform Hit(u, b.who);
    if b.frail >= 0 then perform Hit(u, b.frail)
  }
}`},

	{"empty-world-guards", `
aggregate Foes(u) :=
  count(*)
  over e where e.player <> u.player and e.unittype = 7;
action Tag(u, v) := on e where e.key = u.key set damage = v;
function main(u) { perform Tag(u, Foes(u)) }`},
}

func TestScriptZooDifferential(t *testing.T) {
	for _, tc := range zoo {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			prog := compile(t, tc.src)
			an := NewAnalyzer(prog, categoricals())
			for seed := uint64(1); seed <= 3; seed++ {
				env := randomArmy(t, seed, 70, 25)
				r := rng.New(seed).Tick(int64(seed))

				want, err := interp.RunTickNaive(prog, env, r)
				if err != nil {
					t.Fatalf("interp: %v", err)
				}
				planNaive, err := algebra.RunTick(prog, env, interp.NewNaive(prog, env, r), r)
				if err != nil {
					t.Fatalf("plan+naive: %v", err)
				}
				if !planNaive.AlmostEqualContents(want, 1e-9) {
					t.Fatalf("seed %d: plan+naive differs from interpreter", seed)
				}
				planIndexed, err := algebra.RunTick(prog, env, NewIndexed(an, env, r), r)
				if err != nil {
					t.Fatalf("plan+indexed: %v", err)
				}
				if !planIndexed.AlmostEqualContents(want, 1e-9) {
					t.Fatalf("seed %d: plan+indexed differs from interpreter", seed)
				}
			}
		})
	}
}

// The zoo again, but through batch evaluation (the engine's hot path):
// every aggregate of every zoo program answered per-probe and in batch.
func TestScriptZooBatchAgreement(t *testing.T) {
	for _, tc := range zoo {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			prog := compile(t, tc.src)
			an := NewAnalyzer(prog, categoricals())
			env := randomArmy(t, 9, 60, 20)
			r := rng.New(9).Tick(3)
			for _, def := range prog.Script.Aggs {
				var args [][]float64
				if len(def.Params) > 1 {
					args = make([][]float64, env.Len())
					for i := range args {
						vals := make([]float64, len(def.Params)-1)
						for j := range vals {
							vals[j] = float64(2 + j)
						}
						args[i] = vals
					}
				}
				batch := NewIndexed(an, env, r).EvalAggBatch(def, env.Rows, args)
				single := NewIndexed(an, env, r)
				for i, u := range env.Rows {
					var arg []float64
					if args != nil {
						arg = args[i]
					}
					want := single.EvalAgg(def, u, arg)
					for j := range want {
						if !almostSame(want[j], batch[i][j]) {
							t.Fatalf("agg %s unit %d out %d: single %v batch %v",
								def.Name, i, j, want[j], batch[i][j])
						}
					}
				}
			}
		})
	}
}

func almostSame(a, b float64) bool {
	if a == b {
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}
