// Incremental per-tick index maintenance. The paper rebuilds every index
// from scratch each tick ("we discard the index and build a new one from
// scratch"); between consecutive ticks, though, only the units that moved,
// fought, or died actually change the attributes the indexes key on — the
// classic query-answering-under-updates setting (Berkholz, Keppeler &
// Schweikardt). MaintainFrom patches the previous tick's structures from a
// per-tick Delta instead of rebuilding them.
//
// Exactness argument. Every value baked into an index at build time —
// partition keys, e-only filter outcomes, range-tree sort keys and payload
// columns, kD-tree points, global extrema — is a pure function of the
// owning row's e-columns (the analyzer rejects Random in all of them, and
// SGL has no other source of tick-dependence). Therefore:
//
//   - a row none of whose relevant columns changed contributes
//     bit-identical index content, so a partition with no relevant dirty
//     member is reused as-is;
//   - a partition whose members only changed payload columns keeps its
//     sort order; recomputing the prefix aggregates in place (the same
//     left-to-right association Build uses) reproduces a fresh build bit
//     for bit;
//   - any other change rebuilds just that partition with the exact code
//     the from-scratch path runs, over a membership list that provably
//     equals the from-scratch one (membership is a pure row function, and
//     partition iteration order — ascending first row — equals the scan's
//     first-appearance order).
//
// The result: a maintained provider answers every probe bit-identically
// to a freshly built one, which TestIncrementalMatchesRebuild proves over
// the whole script zoo and the battle simulation at several worker counts.
package exec

import (
	"sort"

	"github.com/epicscale/sgl/internal/index/rangetree"
	"github.com/epicscale/sgl/internal/sgl/ast"
	"github.com/epicscale/sgl/internal/sgl/interp"
)

// Delta describes which environment rows changed between the snapshot the
// previous provider was built on and the current environment.
type Delta struct {
	// Dirty holds the changed row indexes in ascending order.
	Dirty []int
	// Masks is parallel to Dirty: bit c is set iff column c's value
	// changed (bit-level compare; columns ≥ 63 alias into bit 63).
	Masks []uint64
}

// Frac returns the dirty-row fraction over n rows.
func (d Delta) Frac(n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(len(d.Dirty)) / float64(n)
}

// Add merges one more dirty row into the delta, keeping Dirty sorted
// ascending (the order MaintainFrom's partition walks rely on) and OR-ing
// the mask into an existing entry for the same row. It exists for
// mutations that happen after the tick-end diff — externally injected
// commands mutate rows at the next tick boundary, and those rows must
// reach the maintenance path exactly like rows the tick itself changed.
// Over-reporting a column is safe (the row's index entries rebuild from
// the live table); under-reporting is what breaks exactness.
func (d *Delta) Add(row int, mask uint64) {
	i := sort.SearchInts(d.Dirty, row)
	if i < len(d.Dirty) && d.Dirty[i] == row {
		d.Masks[i] |= mask
		return
	}
	d.Dirty = append(d.Dirty, 0)
	d.Masks = append(d.Masks, 0)
	copy(d.Dirty[i+1:], d.Dirty[i:])
	copy(d.Masks[i+1:], d.Masks[i:])
	d.Dirty[i], d.Masks[i] = row, mask
}

// AddRows merges a batch of dirty rows, all sharing one mask, in a
// single pass. rows must be sorted ascending and duplicate-free —
// exactly what the command pipeline produces at the tick boundary. The
// merge is O(len(d.Dirty) + len(rows)), where the equivalent Add loop
// would shift the tail once per new row; at the sharded admission path's
// command volumes that quadratic cost is the difference between a tick
// and a stall.
func (d *Delta) AddRows(rows []int, mask uint64) {
	if len(rows) == 0 {
		return
	}
	if len(d.Dirty) == 0 {
		d.Dirty = append(d.Dirty, rows...)
		for range rows {
			d.Masks = append(d.Masks, mask)
		}
		return
	}
	oldDirty, oldMasks := d.Dirty, d.Masks
	merged := make([]int, 0, len(oldDirty)+len(rows))
	masks := make([]uint64, 0, len(oldDirty)+len(rows))
	i, j := 0, 0
	for i < len(oldDirty) || j < len(rows) {
		switch {
		case j >= len(rows) || (i < len(oldDirty) && oldDirty[i] < rows[j]):
			merged = append(merged, oldDirty[i])
			masks = append(masks, oldMasks[i])
			i++
		case i >= len(oldDirty) || rows[j] < oldDirty[i]:
			merged = append(merged, rows[j])
			masks = append(masks, mask)
			j++
		default: // same row: union the masks
			merged = append(merged, oldDirty[i])
			masks = append(masks, oldMasks[i]|mask)
			i++
			j++
		}
	}
	d.Dirty, d.Masks = merged, masks
}

// MaintainFrom patches the previous tick's index structures to reflect
// the current environment instead of rebuilding them, definition by
// definition. For each definition it counts the dirty rows whose changed
// columns intersect the definition's build-time dependencies; if that
// count exceeds threshold × rows the definition is left to rebuild from
// scratch (Stats.MaintainFallbacks), otherwise only the affected
// partitions are rebuilt or payload-patched and the rest are reused.
//
// MaintainFrom takes ownership of prev: patched structures may be mutated
// in place, so prev must not be probed afterwards. It must run before
// Freeze/Fork, on the tick's single goroutine. The receiver must wrap the
// same environment table (same row order and keys) and analyzer as prev;
// if the populations disagree, MaintainFrom is a no-op and everything
// rebuilds lazily. It returns whether any definition was maintained.
func (p *Indexed) MaintainFrom(prev *Indexed, d Delta, threshold float64) bool {
	if prev == nil || prev.an != p.an || prev.env.Len() != p.env.Len() {
		return false
	}
	n := p.env.Len()
	limit := threshold * float64(n)
	maintained := false
	//sgl:unordered per-definition maintenance writes only its own index; fallback counters are sums
	for def, old := range prev.aggIdx {
		a := p.an.Agg(def)
		if !a.Indexable || len(old.rowPart) != n {
			continue
		}
		if float64(relevantDirty(d, a.Deps.All())) > limit {
			p.Stats.MaintainFallbacks++
			continue
		}
		p.aggIdx[def] = p.maintainAgg(def, a, old, d)
		maintained = true
	}
	//sgl:unordered per-definition maintenance writes only its own index; fallback counters are sums
	for def, old := range prev.actIdx {
		a := p.an.Act(def)
		if a.Class != ActArea || len(old.rowPart) != n {
			continue
		}
		if float64(relevantDirty(d, a.Deps.All())) > limit {
			p.Stats.MaintainFallbacks++
			continue
		}
		p.actIdx[def] = p.maintainAct(def, a, old, d)
		maintained = true
	}
	// Keys are constant and rows never reorder, so the key lookup carries
	// over verbatim (normally the engine seeds it anyway).
	if p.keyIndex == nil {
		p.keyIndex = prev.keyIndex
	}
	return maintained
}

// relevantDirty counts the dirty rows whose changed columns intersect m.
func relevantDirty(d Delta, m depMask) int {
	n := 0
	for _, mask := range d.Masks {
		if depMask(mask)&m != 0 {
			n++
		}
	}
	return n
}

// partFate accumulates what one partition needs after classifying every
// relevant dirty row.
type partFate struct {
	relabel bool // membership changed: rebuild everything from new rows
	rtShape bool // a sort-key column changed: rebuild the range tree
	rtVals  bool // only payload columns changed: recompute prefixes in place
	kd      bool // a kD point column changed: rebuild the kD-tree
	global  bool // a global-extremum argument changed: recompute extrema
}

// classifyDirty walks the delta once for a definition, assigning a fate
// to every touched partition and collecting, per new partition key, the
// dirty rows that now belong to it (ascending, since d.Dirty is).
// departed marks dirty rows whose membership was re-evaluated; they are
// dropped from their old partition and re-added via arrivals if they
// stayed.
func (p *Indexed) classifyDirty(
	d Delta, member, shape, vals, kd, global depMask,
	rowPart []int32, order []string,
	eonly []ast.Cond, dl interp.DefLike, cols []int,
) (fates map[string]*partFate, arrivals map[string][]int, departed map[int]bool) {
	fates = map[string]*partFate{}
	arrivals = map[string][]int{}
	departed = map[int]bool{}
	fateOf := func(key string) *partFate {
		f := fates[key]
		if f == nil {
			f = &partFate{}
			fates[key] = f
		}
		return f
	}
	for j, r := range d.Dirty {
		mask := depMask(d.Masks[j])
		hasOld := rowPart[r] >= 0
		if mask&member != 0 {
			// Membership may have changed: pull the row out of its old
			// partition and re-insert it where it belongs now.
			if hasOld {
				fateOf(order[rowPart[r]]).relabel = true
				departed[r] = true
			}
			row := p.env.Rows[r]
			if p.passesEOnly(eonly, dl, row) {
				nk := p.partitionKey(row, cols)
				fateOf(nk).relabel = true
				arrivals[nk] = append(arrivals[nk], r)
			}
			continue
		}
		if !hasOld {
			continue // still filtered out; nothing indexed depends on it
		}
		f := fateOf(order[rowPart[r]])
		if mask&shape != 0 {
			f.rtShape = true
		} else if mask&vals != 0 {
			f.rtVals = true
		}
		if mask&kd != 0 {
			f.kd = true
		}
		if mask&global != 0 {
			f.global = true
		}
	}
	return fates, arrivals, departed
}

// mergeMembership rebuilds one relabeled partition's row list: the old
// members that did not depart, plus the dirty arrivals, ascending — which
// is exactly the membership a from-scratch row scan would produce.
func mergeMembership(oldRows, arrivals []int, departed map[int]bool) []int {
	rows := make([]int, 0, len(oldRows)+len(arrivals))
	for _, r := range oldRows {
		if !departed[r] {
			rows = append(rows, r)
		}
	}
	rows = append(rows, arrivals...)
	sort.Ints(rows)
	return rows
}

// sortedByFirstRow orders partition keys by their first member row —
// identical to the first-appearance order the from-scratch scan records.
func sortedByFirstRow(keys []string, firstRow func(key string) int) {
	sort.Slice(keys, func(i, j int) bool {
		return firstRow(keys[i]) < firstRow(keys[j])
	})
}

func (p *Indexed) maintainAgg(def *ast.AggDef, a *AggAnalysis, old *aggIndex, d Delta) *aggIndex {
	idx := &aggIndex{
		a: a, payload: old.payload, div: old.div, minArg: old.minArg,
		needRT: old.needRT, needKD: old.needKD, anyGlobal: old.anyGlobal,
		parts: make(map[string]*aggPart, len(old.parts)),
	}
	dl := interp.DefParams(def)
	cols := eqCols(a.Eqs)
	deps := a.Deps
	fates, arrivals, departed := p.classifyDirty(
		d, deps.Member, deps.Shape, deps.Vals, deps.KD, deps.Global,
		old.rowPart, old.order, a.EOnly, dl, cols)

	for _, key := range old.order {
		part := old.parts[key]
		f := fates[key]
		switch {
		case f == nil:
			// No relevant dirty member: every structure is a pure function
			// of unchanged rows, so the whole partition carries over.
			p.countReuse(idx)
		case f.relabel:
			rows := mergeMembership(part.rows, arrivals[key], departed)
			delete(arrivals, key)
			if len(rows) == 0 {
				continue // partition vanished; drop it like the scan would
			}
			part = &aggPart{rows: rows}
			p.buildAggPart(def, a, idx, part)
		default:
			// Membership intact: refresh only the invalidated structures.
			if idx.needRT {
				switch {
				case f.rtShape:
					pts, vals := p.aggPartPayload(def, a, idx, part.rows)
					part.rt = rangetree.Build(pts, len(idx.payload.terms), vals)
					p.Stats.IndexBuilds++
				case f.rtVals:
					part.rt.Repatch(p.aggPartVals(def, idx, part.rows))
					p.Stats.IndexPatches++
				default:
					p.Stats.IndexReuses++
				}
			}
			if idx.needKD {
				if f.kd {
					p.buildAggKD(part)
					p.Stats.IndexBuilds++
				} else {
					p.Stats.IndexReuses++
				}
			}
			if idx.anyGlobal {
				if f.global {
					p.buildAggGlobal(def, a, idx, part)
					p.Stats.IndexBuilds++
				} else {
					p.Stats.IndexReuses++
				}
			}
		}
		idx.parts[key] = part
	}

	// Partitions born this tick (arrivals to keys the old index lacked).
	newKeys := make([]string, 0, len(arrivals))
	//sgl:unordered keys are collected and sorted before partitions are built
	for key := range arrivals {
		newKeys = append(newKeys, key)
	}
	sort.Strings(newKeys)
	for _, key := range newKeys {
		part := &aggPart{rows: arrivals[key]}
		p.buildAggPart(def, a, idx, part)
		idx.parts[key] = part
	}

	idx.order = make([]string, 0, len(idx.parts))
	//sgl:unordered partition order is re-derived by sortedByFirstRow below
	for key := range idx.parts {
		idx.order = append(idx.order, key)
	}
	sortedByFirstRow(idx.order, func(key string) int { return idx.parts[key].rows[0] })
	idx.buildRowPart(p.env.Len())
	return idx
}

// countReuse books the reuse of a fully clean aggregate partition's
// structures.
func (p *Indexed) countReuse(idx *aggIndex) {
	if idx.needRT {
		p.Stats.IndexReuses++
	}
	if idx.needKD {
		p.Stats.IndexReuses++
	}
	if idx.anyGlobal {
		p.Stats.IndexReuses++
	}
}

func (p *Indexed) maintainAct(def *ast.ActDef, a *ActAnalysis, old *actIndex, d Delta) *actIndex {
	idx := &actIndex{a: a, parts: make(map[string]*actPart, len(old.parts))}
	dl := interp.DefParams(def)
	cols := eqCols(a.Eqs)
	fates, arrivals, departed := p.classifyDirty(
		d, a.Deps.Member, a.Deps.Shape, 0, 0, 0,
		old.rowPart, old.order, a.EOnly, dl, cols)

	for _, key := range old.order {
		part := old.parts[key]
		f := fates[key]
		switch {
		case f == nil:
			p.Stats.IndexReuses++
		case f.relabel:
			rows := mergeMembership(part.rows, arrivals[key], departed)
			delete(arrivals, key)
			if len(rows) == 0 {
				continue
			}
			part = &actPart{rows: rows}
			p.buildActPart(a, part)
		case f.rtShape:
			p.buildActPart(a, part)
		default:
			p.Stats.IndexReuses++
		}
		idx.parts[key] = part
	}

	newKeys := make([]string, 0, len(arrivals))
	//sgl:unordered keys are collected and sorted before partitions are built
	for key := range arrivals {
		newKeys = append(newKeys, key)
	}
	sort.Strings(newKeys)
	for _, key := range newKeys {
		part := &actPart{rows: arrivals[key]}
		p.buildActPart(a, part)
		idx.parts[key] = part
	}

	idx.order = make([]string, 0, len(idx.parts))
	//sgl:unordered partition order is re-derived by sortedByFirstRow below
	for key := range idx.parts {
		idx.order = append(idx.order, key)
	}
	sortedByFirstRow(idx.order, func(key string) int { return idx.parts[key].rows[0] })
	idx.buildRowPart(p.env.Len())
	return idx
}
