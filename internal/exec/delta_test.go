package exec

import (
	"math/rand"
	"sort"
	"testing"
)

// AddRows must be observationally identical to a per-row Add loop — it
// exists only to replace that loop's O(n) tail-shift per insert with a
// single merge pass for the bulk command batches the sharded admission
// path produces.
func TestDeltaAddRowsMatchesAddLoop(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		var ref, bulk Delta
		// Seed both with the same random pre-existing dirty set.
		pre := r.Intn(20)
		for k := 0; k < pre; k++ {
			row, mask := r.Intn(60), uint64(1)<<uint(r.Intn(8))
			ref.Add(row, mask)
			bulk.Add(row, mask)
		}
		// Build a sorted duplicate-free batch, sometimes overlapping the
		// pre-existing rows, sometimes disjoint, sometimes empty.
		seen := map[int]bool{}
		var rows []int
		for k := r.Intn(25); k > 0; k-- {
			row := r.Intn(60)
			if !seen[row] {
				seen[row] = true
				rows = append(rows, row)
			}
		}
		sort.Ints(rows)
		mask := uint64(1) << uint(r.Intn(8))

		for _, row := range rows {
			ref.Add(row, mask)
		}
		bulk.AddRows(rows, mask)

		if len(ref.Dirty) != len(bulk.Dirty) {
			t.Fatalf("trial %d: %d dirty rows via Add, %d via AddRows", trial, len(ref.Dirty), len(bulk.Dirty))
		}
		for i := range ref.Dirty {
			if ref.Dirty[i] != bulk.Dirty[i] || ref.Masks[i] != bulk.Masks[i] {
				t.Fatalf("trial %d: entry %d = (%d, %#x) via Add, (%d, %#x) via AddRows",
					trial, i, ref.Dirty[i], ref.Masks[i], bulk.Dirty[i], bulk.Masks[i])
			}
		}
	}
}
