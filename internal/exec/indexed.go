package exec

import (
	"fmt"
	"math"
	"strings"

	"github.com/epicscale/sgl/internal/geom"
	"github.com/epicscale/sgl/internal/index/kdtree"
	"github.com/epicscale/sgl/internal/index/rangetree"
	"github.com/epicscale/sgl/internal/index/segtree"
	"github.com/epicscale/sgl/internal/index/sweepline"
	"github.com/epicscale/sgl/internal/rng"
	"github.com/epicscale/sgl/internal/sgl/ast"
	"github.com/epicscale/sgl/internal/sgl/interp"
	"github.com/epicscale/sgl/internal/sgl/sem"
	"github.com/epicscale/sgl/internal/table"
)

// Indexed is the paper's optimized aggregate query evaluator (Section 5.3):
// per-tick, per-definition index structures — layered range trees for
// divisible aggregates, kD-trees for nearest-neighbour, sweep lines for
// MIN/MAX — built over categorical partitions of E and probed per unit.
//
// Construct one Indexed per tick; indices are built lazily on first use of
// each definition (the paper's two index-building phases fall out of this:
// decision-phase aggregates trigger builds before probing, action-phase
// structures are built when actions run). Indexed must agree exactly with
// interp.Naive; the differential tests in this package enforce that.
//
// An Indexed is not safe for concurrent use: index builds and the Stats
// counters mutate shared maps. For parallel tick execution, call Freeze
// once to build every index the program can use, then give each worker its
// own Fork — a view that shares the frozen read-only indexes but owns its
// Stats and batch scratch.
type Indexed struct {
	prog  *sem.Program
	an    *Analyzer
	env   *table.Table
	r     rng.TickSource
	naive *interp.Naive

	keyIndex map[int64]int
	aggIdx   map[*ast.AggDef]*aggIndex
	actIdx   map[*ast.ActDef]*actIndex

	// frozen is set by Freeze: every index the program can demand exists
	// and the shared state is read-only from here on. forked marks a view
	// returned by Fork; a fork must never build an index lazily (that
	// would race with sibling forks), so the lazy builders panic on one.
	frozen bool
	forked bool

	// argFold holds cross-partition arg-extremum state during one batch
	// call; reset at the start of every EvalAggBatch.
	argFold map[[2]int]argState

	// probeReqs, probeParts and probePayload are per-instance scratch for
	// the EvalAggInto probe path. EvalAgg never touches them, so its
	// returned slices stay safe to retain; Fork resets them so sibling
	// views never share backing arrays.
	probeReqs    []matchReq
	probeParts   []*aggPart
	probePayload []float64

	// Stats counts index builds and probes for the benchmark reports.
	Stats Stats
}

// Stats counts the work the indexed evaluator performed in one tick.
type Stats struct {
	IndexBuilds int
	// IndexReuses counts index structures carried over unchanged from the
	// previous tick by MaintainFrom, and IndexPatches counts range trees
	// whose payload prefix aggregates were recomputed in place (shape
	// reused). MaintainFallbacks counts definitions whose relevant dirty
	// fraction exceeded the threshold, forcing a from-scratch rebuild.
	IndexReuses       int
	IndexPatches      int
	MaintainFallbacks int
	TreeProbes        int
	KDProbes          int
	Sweeps            int
	ScanProbes        int
}

var _ interp.Provider = (*Indexed)(nil)

// NewIndexed returns an indexed provider for one tick. The analyzer is
// shared across ticks (classification is per-program).
func NewIndexed(an *Analyzer, env *table.Table, r rng.TickSource) *Indexed {
	return &Indexed{
		prog: an.prog, an: an, env: env, r: r,
		naive:  interp.NewNaive(an.prog, env, r),
		aggIdx: map[*ast.AggDef]*aggIndex{},
		actIdx: map[*ast.ActDef]*actIndex{},
	}
}

// SeedKeyIndex installs a prebuilt key → row-index map (over the same
// environment snapshot) so Freeze does not rebuild one the caller already
// has. Ignored if a lookup was already built.
func (p *Indexed) SeedKeyIndex(idx map[int64]int) {
	if p.keyIndex == nil {
		p.keyIndex = idx
	}
}

// Freeze eagerly builds every index structure the program can demand this
// tick: the key lookup table, one aggregate index per indexable aggregate
// definition, and one spatial index per area action. After Freeze the
// provider's shared state is only ever read, so Forked views may probe it
// from concurrent goroutines. Build work lands on the receiver's Stats.
//
// Eagerness is the price of lock-free sharing: the lazy serial path skips
// definitions a tick never probes, so a frozen provider may build more
// indexes (and report higher Stats.IndexBuilds) than a serial tick over
// the same environment. Game outcomes are unaffected.
func (p *Indexed) Freeze() {
	p.keyLookup()
	for _, def := range p.prog.Script.Aggs {
		if p.an.Agg(def).Indexable {
			p.aggIndexFor(def)
		}
	}
	for _, def := range p.prog.Script.Acts {
		if p.an.Act(def).Class == ActArea {
			p.actIndexFor(def)
		}
	}
	p.frozen = true
}

// Fork returns a worker-private view of a frozen provider: it shares the
// immutable per-tick indexes (and the environment snapshot) with the
// receiver but owns its Stats counters and batch scratch state. Fork
// without a prior Freeze is unsafe — a lazy index build in one fork would
// race with reads in another — and panics rather than racing silently.
func (p *Indexed) Fork() *Indexed {
	if !p.frozen {
		panic("exec: Fork before Freeze — forked views share index state and must not build lazily")
	}
	c := *p
	c.Stats = Stats{}
	c.argFold = nil
	c.probeReqs, c.probeParts, c.probePayload = nil, nil, nil
	c.forked = true
	return &c
}

// guardLazyBuild panics when a forked view is about to build an index
// structure lazily: every structure a fork can probe must already exist
// (Freeze builds them all), so a cache miss here means shared mutable
// state would be written from a worker goroutine.
func (p *Indexed) guardLazyBuild(what string) {
	if p.forked {
		panic("exec: lazy " + what + " build on a forked view — Freeze must build every index before Fork")
	}
}

// Add folds another view's counters into s (used to merge per-worker
// stats after a parallel tick).
func (s *Stats) Add(o Stats) {
	s.IndexBuilds += o.IndexBuilds
	s.IndexReuses += o.IndexReuses
	s.IndexPatches += o.IndexPatches
	s.MaintainFallbacks += o.MaintainFallbacks
	s.TreeProbes += o.TreeProbes
	s.KDProbes += o.KDProbes
	s.Sweeps += o.Sweeps
	s.ScanProbes += o.ScanProbes
}

// ---------------------------------------------------------------------------
// Per-definition aggregate indices

// payloadSpec lays out the flattened per-point payload columns a range tree
// carries: literal 1s (counts), argument terms, and squared argument terms.
type payloadSpec struct {
	terms   []ast.Term // nil entry = constant 1
	squared []bool
	index   map[string]int
}

func (ps *payloadSpec) col(t ast.Term, squared bool) int {
	key := "1"
	if t != nil {
		key = t.String()
	}
	if squared {
		key += "²"
	}
	if ps.index == nil {
		ps.index = map[string]int{}
	}
	if i, ok := ps.index[key]; ok {
		return i
	}
	ps.terms = append(ps.terms, t)
	ps.squared = append(ps.squared, squared)
	ps.index[key] = len(ps.terms) - 1
	return len(ps.terms) - 1
}

// divCols records which payload columns serve one divisible output.
type divCols struct {
	cnt, sum, sumSq int // -1 when unused
}

type aggIndex struct {
	a       *AggAnalysis
	payload payloadSpec
	div     []divCols // indexed by output position (unused entries zeroed)
	// minPayCol is the payload column of each MinMax output's argument in
	// the per-partition value arrays (separate from the range tree).
	minArg []ast.Term
	parts  map[string]*aggPart
	order  []string // deterministic partition iteration order
	// Which per-partition structures this definition demands.
	needRT, needKD, anyGlobal bool
	// rowPart maps every environment row to its partition ordinal in
	// order, or -1 when the e-only filter excludes it. MaintainFrom uses
	// it to find the partition a dirty row used to live in.
	rowPart []int32
}

// buildRowPart recomputes the row → partition-ordinal map from parts and
// order (called after membership is final).
func (idx *aggIndex) buildRowPart(n int) {
	idx.rowPart = makeRowPart(n)
	for ord, key := range idx.order {
		for _, ri := range idx.parts[key].rows {
			idx.rowPart[ri] = int32(ord)
		}
	}
}

func makeRowPart(n int) []int32 {
	rp := make([]int32, n)
	for i := range rp {
		rp[i] = -1
	}
	return rp
}

type aggPart struct {
	rows   []int // env row indexes
	rt     *rangetree.Tree
	kd     *kdtree.Tree
	global []globalExt // per output: precomputed extremum (ClassGlobal)
}

type globalExt struct {
	val float64
	key int64
	ok  bool
}

func (p *Indexed) partitionKey(row []float64, cols []int) string {
	var b strings.Builder
	for _, c := range cols {
		fmt.Fprintf(&b, "%g|", row[c])
	}
	return b.String()
}

// eqCols returns the sorted distinct columns of the analysis' eq conjuncts.
func eqCols(eqs []EqCond) []int {
	var cols []int
	for _, eq := range eqs {
		dup := false
		for _, c := range cols {
			if c == eq.Col {
				dup = true
			}
		}
		if !dup {
			cols = append(cols, eq.Col)
		}
	}
	return cols
}

// passesEOnly evaluates the e-only conjuncts against one row (u/args are
// irrelevant; the row stands in for both).
func (p *Indexed) passesEOnly(conds []ast.Cond, dl interp.DefLike, row []float64) bool {
	for _, c := range conds {
		ok, err := interp.EvalDefCond(c, dl, row, nil, row, p.prog, p.r)
		if err != nil {
			panic("exec: " + err.Error())
		}
		if !ok {
			return false
		}
	}
	return true
}

// aggIndexFor builds (once per tick) the index structures for a definition.
func (p *Indexed) aggIndexFor(def *ast.AggDef) *aggIndex {
	if idx, ok := p.aggIdx[def]; ok {
		return idx
	}
	p.guardLazyBuild("aggregate index")
	a := p.an.Agg(def)
	idx := &aggIndex{a: a, parts: map[string]*aggPart{}}

	// Payload layout for divisible outputs.
	idx.div = make([]divCols, len(def.Outputs))
	idx.minArg = make([]ast.Term, len(def.Outputs))
	for i, out := range def.Outputs {
		idx.div[i] = divCols{cnt: -1, sum: -1, sumSq: -1}
		switch a.OutClass[i] {
		case ClassDivisible:
			idx.needRT = true
			switch out.Func {
			case ast.Count:
				idx.div[i].cnt = idx.payload.col(nil, false)
			case ast.Sum:
				idx.div[i].sum = idx.payload.col(out.Arg, false)
			case ast.Avg:
				idx.div[i].cnt = idx.payload.col(nil, false)
				idx.div[i].sum = idx.payload.col(out.Arg, false)
			case ast.Stddev:
				idx.div[i].cnt = idx.payload.col(nil, false)
				idx.div[i].sum = idx.payload.col(out.Arg, false)
				idx.div[i].sumSq = idx.payload.col(out.Arg, true)
			}
		case ClassNearest:
			idx.needKD = true
		case ClassGlobal:
			idx.anyGlobal = true
			idx.minArg[i] = out.Arg
		case ClassMinMax:
			idx.minArg[i] = out.Arg
		}
	}

	// Partition rows by the eq columns, applying e-only filters at build.
	cols := eqCols(a.Eqs)
	dl := interp.DefParams(def)
	for i, row := range p.env.Rows {
		if !p.passesEOnly(a.EOnly, dl, row) {
			continue
		}
		key := p.partitionKey(row, cols)
		part := idx.parts[key]
		if part == nil {
			part = &aggPart{}
			idx.parts[key] = part
			idx.order = append(idx.order, key)
		}
		part.rows = append(part.rows, i)
	}
	idx.buildRowPart(p.env.Len())

	for _, key := range idx.order {
		p.buildAggPart(def, a, idx, idx.parts[key])
	}
	p.aggIdx[def] = idx
	return idx
}

// buildAggPart (re)builds every structure the definition demands for one
// partition from the current environment rows. The result is a pure
// function of the member rows' values, which is what lets MaintainFrom
// reuse a partition whose members did not change.
func (p *Indexed) buildAggPart(def *ast.AggDef, a *AggAnalysis, idx *aggIndex, part *aggPart) {
	if idx.needRT {
		pts, vals := p.aggPartPayload(def, a, idx, part.rows)
		part.rt = rangetree.Build(pts, len(idx.payload.terms), vals)
		p.Stats.IndexBuilds++
	}
	if idx.needKD {
		p.buildAggKD(part)
		p.Stats.IndexBuilds++
	}
	if idx.anyGlobal {
		p.buildAggGlobal(def, a, idx, part)
		p.Stats.IndexBuilds++
	}
}

// aggPartPayload evaluates the range-tree points and flattened payload
// columns for one partition's rows, in row order.
func (p *Indexed) aggPartPayload(def *ast.AggDef, a *AggAnalysis, idx *aggIndex, rows []int) ([]rangetree.Point, []float64) {
	xCol, yCol := p.axisCols(a.Axes)
	pts := make([]rangetree.Point, len(rows))
	for j, ri := range rows {
		row := p.env.Rows[ri]
		pts[j] = rangetree.Point{X: p.axisVal(row, xCol), Y: p.axisVal(row, yCol)}
	}
	return pts, p.aggPartVals(def, idx, rows)
}

// aggPartVals evaluates only the flattened payload columns — what a
// payload-preserving Repatch needs (the points are unchanged by
// definition there).
func (p *Indexed) aggPartVals(def *ast.AggDef, idx *aggIndex, rows []int) []float64 {
	dl := interp.DefParams(def)
	w := len(idx.payload.terms)
	vals := make([]float64, len(rows)*w)
	for j, ri := range rows {
		row := p.env.Rows[ri]
		for c, term := range idx.payload.terms {
			v := 1.0
			if term != nil {
				var err error
				v, err = interp.EvalDefTermWith(term, dl, row, nil, row, p.prog, p.r)
				if err != nil {
					panic("exec: " + err.Error())
				}
				if idx.payload.squared[c] {
					v *= v
				}
			}
			vals[j*w+c] = v
		}
	}
	return vals
}

// buildAggKD builds the partition's kD-tree over unit positions.
func (p *Indexed) buildAggKD(part *aggPart) {
	schema := p.prog.Schema
	xc, yc := schema.MustCol("posx"), schema.MustCol("posy")
	pts := make([]kdtree.Point, len(part.rows))
	for j, ri := range part.rows {
		row := p.env.Rows[ri]
		pts[j] = kdtree.Point{X: row[xc], Y: row[yc], Key: int64(row[schema.KeyCol()])}
	}
	part.kd = kdtree.Build(pts)
}

// buildAggGlobal precomputes the partition's per-output global extrema.
func (p *Indexed) buildAggGlobal(def *ast.AggDef, a *AggAnalysis, idx *aggIndex, part *aggPart) {
	dl := interp.DefParams(def)
	schema := p.prog.Schema
	part.global = make([]globalExt, len(def.Outputs))
	for i, out := range def.Outputs {
		if a.OutClass[i] != ClassGlobal {
			continue
		}
		ext := globalExt{}
		isMin := out.Func == ast.Min || out.Func == ast.ArgMin
		for _, ri := range part.rows {
			row := p.env.Rows[ri]
			v, err := interp.EvalDefTermWith(out.Arg, dl, row, nil, row, p.prog, p.r)
			if err != nil {
				panic("exec: " + err.Error())
			}
			k := int64(row[schema.KeyCol()])
			if !ext.ok || (isMin && v < ext.val) || (!isMin && v > ext.val) ||
				(v == ext.val && k < ext.key) {
				ext = globalExt{val: v, key: k, ok: true}
			}
		}
		part.global[i] = ext
	}
}

// axisCols maps the analysis' range axes to the (x, y) of the 2-d indices;
// a missing axis contributes a constant 0 coordinate and ±Inf bounds.
func (p *Indexed) axisCols(axes []RangeAxis) (int, int) {
	xCol, yCol := -1, -1
	if len(axes) >= 1 {
		xCol = axes[0].Col
	}
	if len(axes) >= 2 {
		yCol = axes[1].Col
	}
	return xCol, yCol
}

func (p *Indexed) axisVal(row []float64, col int) float64 {
	if col < 0 {
		return 0
	}
	return row[col]
}

// probeRect evaluates the axis bound terms for one probing unit.
func (p *Indexed) probeRect(a *AggAnalysis, dl interp.DefLike, unit, args []float64) (geom.Rect, error) {
	r := geom.Rect{MinX: math.Inf(-1), MinY: math.Inf(-1), MaxX: math.Inf(1), MaxY: math.Inf(1)}
	evalBound := func(t ast.Term) (float64, error) {
		return interp.EvalDefTermWith(t, dl, unit, args, unit, p.prog, p.r)
	}
	if len(a.Axes) >= 1 {
		ax := a.Axes[0]
		if ax.Lo != nil {
			v, err := evalBound(ax.Lo)
			if err != nil {
				return r, err
			}
			r.MinX = v
		}
		if ax.Hi != nil {
			v, err := evalBound(ax.Hi)
			if err != nil {
				return r, err
			}
			r.MaxX = v
		}
	}
	if len(a.Axes) >= 2 {
		ax := a.Axes[1]
		if ax.Lo != nil {
			v, err := evalBound(ax.Lo)
			if err != nil {
				return r, err
			}
			r.MinY = v
		}
		if ax.Hi != nil {
			v, err := evalBound(ax.Hi)
			if err != nil {
				return r, err
			}
			r.MaxY = v
		}
	}
	// A degenerate second axis (only one range attribute) keeps Y unbounded
	// around the constant-0 coordinate: Inf bounds already cover it.
	return r, nil
}

// matchReq is one compiled eq/neq requirement of a partition probe.
type matchReq struct {
	col int
	val float64
	neq bool
}

// matchParts returns the partitions consistent with the eq conjuncts for
// one probing unit, in deterministic order. With scratch set it reuses the
// per-instance probe buffers — the result is only valid until the next
// scratch call on this view.
func (p *Indexed) matchParts(idx *aggIndex, dl interp.DefLike, eqs []EqCond, unit, args []float64, scratch bool) ([]*aggPart, error) {
	var reqs []matchReq
	var out []*aggPart
	if scratch {
		reqs, out = p.probeReqs[:0], p.probeParts[:0]
	} else {
		reqs = make([]matchReq, 0, len(eqs))
	}
	for _, eq := range eqs {
		v, err := interp.EvalDefTermWith(eq.Term, dl, unit, args, unit, p.prog, p.r)
		if err != nil {
			return nil, err
		}
		reqs = append(reqs, matchReq{col: eq.Col, val: v, neq: eq.Neq})
	}
	if scratch {
		p.probeReqs = reqs
	}
	for _, key := range idx.order {
		part := idx.parts[key]
		if len(part.rows) == 0 {
			continue
		}
		sample := p.env.Rows[part.rows[0]]
		ok := true
		for _, rq := range reqs {
			if rq.neq {
				if sample[rq.col] == rq.val {
					ok = false
				}
			} else if sample[rq.col] != rq.val {
				ok = false
			}
		}
		if ok {
			out = append(out, part)
		}
	}
	if scratch {
		p.probeParts = out
	}
	return out, nil
}

// identityResults fills the empty-set identities for every output.
func identityResults(def *ast.AggDef) []float64 {
	return fillIdentities(make([]float64, len(def.Outputs)), def)
}

// fillIdentities writes the empty-set identity of every output into out,
// which must have length len(def.Outputs).
func fillIdentities(out []float64, def *ast.AggDef) []float64 {
	for i, o := range def.Outputs {
		switch o.Func {
		case ast.Min:
			out[i] = math.Inf(1)
		case ast.Max:
			out[i] = math.Inf(-1)
		case ast.ArgMin, ast.ArgMax, ast.NearestKey:
			out[i] = interp.NoKey
		case ast.NearestDist:
			out[i] = math.Inf(1)
		case ast.NearestX, ast.NearestY:
			out[i] = 0
		default:
			out[i] = 0
		}
	}
	return out
}

// EvalAgg answers one probe. Divisible outputs are O(log n) range-tree
// probes, nearest outputs are kD-tree descents, global extrema are O(1)
// lookups; MinMax-class outputs fall back to a partition scan on this
// single-probe path (the batch path in EvalAggBatch uses the sweep line).
func (p *Indexed) EvalAgg(def *ast.AggDef, unit []float64, args []float64) []float64 {
	return p.evalCore(nil, def, unit, args, false)
}

// EvalAggInto is EvalAgg writing its results into dst, which must have
// length len(def.Outputs); it returns dst. The probe runs on per-instance
// scratch buffers, so a serial caller that owns this view (each engine
// shard works on its own Fork) pays no allocation per probe. Results must
// be copied out before the next EvalAggInto call if they are retained —
// callers that keep slices across probes belong on EvalAgg.
func (p *Indexed) EvalAggInto(dst []float64, def *ast.AggDef, unit []float64, args []float64) []float64 {
	return p.evalCore(dst, def, unit, args, false)
}

// evalCore answers one probe. A nil dst allocates fresh result (and
// internal) slices, so the return is safe to retain; a non-nil dst of
// length len(def.Outputs) receives the results in place and switches the
// probe internals to the per-instance scratch buffers — the zero-alloc
// path behind EvalAggInto.
func (p *Indexed) evalCore(dst []float64, def *ast.AggDef, unit []float64, args []float64, skipMinMax bool) []float64 {
	scratch := dst != nil
	a := p.an.Agg(def)
	if !a.Indexable {
		p.Stats.ScanProbes++
		out := p.naive.EvalAgg(def, unit, args)
		if scratch {
			copy(dst, out)
			return dst
		}
		return out
	}
	dl := interp.DefParams(def)
	// u-only conjuncts: false ⇒ empty set ⇒ identities.
	for _, c := range a.UOnly {
		ok, err := interp.EvalDefCond(c, dl, unit, args, unit, p.prog, p.r)
		if err != nil {
			panic("exec: " + err.Error())
		}
		if !ok {
			if scratch {
				return fillIdentities(dst, def)
			}
			return identityResults(def)
		}
	}
	idx := p.aggIndexFor(def)
	parts, err := p.matchParts(idx, dl, a.Eqs, unit, args, scratch)
	if err != nil {
		panic("exec: " + err.Error())
	}
	rect, err := p.probeRect(a, dl, unit, args)
	if err != nil {
		panic("exec: " + err.Error())
	}

	var out []float64
	if scratch {
		out = fillIdentities(dst, def)
	} else {
		out = identityResults(def)
	}
	w := len(idx.payload.terms)
	var payload []float64
	if w > 0 {
		if scratch {
			if cap(p.probePayload) < w {
				p.probePayload = make([]float64, w)
			}
			payload = p.probePayload[:w]
			for i := range payload {
				payload[i] = 0
			}
		} else {
			payload = make([]float64, w)
		}
	}
	needPayload := false
	for i := range def.Outputs {
		if a.OutClass[i] == ClassDivisible {
			needPayload = true
		}
	}
	if needPayload {
		for _, part := range parts {
			if part.rt != nil {
				part.rt.Aggregate(rect, payload)
				p.Stats.TreeProbes++
			}
		}
	}

	schema := p.prog.Schema
	for i, o := range def.Outputs {
		switch a.OutClass[i] {
		case ClassDivisible:
			d := idx.div[i]
			switch o.Func {
			case ast.Count:
				out[i] = payload[d.cnt]
			case ast.Sum:
				out[i] = payload[d.sum]
			case ast.Avg:
				if payload[d.cnt] > 0 {
					out[i] = payload[d.sum] / payload[d.cnt]
				}
			case ast.Stddev:
				if cnt := payload[d.cnt]; cnt > 0 {
					mean := payload[d.sum] / cnt
					variance := payload[d.sumSq]/cnt - mean*mean
					if variance < 0 {
						variance = 0
					}
					out[i] = math.Sqrt(variance)
				}
			}
		case ClassNearest:
			best := kdtree.Result{DistSq: math.Inf(1)}
			self := int64(unit[schema.KeyCol()])
			for _, part := range parts {
				if part.kd == nil {
					continue
				}
				p.Stats.KDProbes++
				r := part.kd.Nearest(unit[schema.MustCol("posx")], unit[schema.MustCol("posy")], self, math.Inf(1))
				if r.Found && (!best.Found || r.DistSq < best.DistSq ||
					(r.DistSq == best.DistSq && r.Key < best.Key)) {
					best = r
				}
			}
			if best.Found {
				switch o.Func {
				case ast.NearestKey:
					out[i] = float64(best.Key)
				case ast.NearestX:
					out[i] = best.X
				case ast.NearestY:
					out[i] = best.Y
				default:
					out[i] = math.Sqrt(best.DistSq)
				}
			}
		case ClassGlobal:
			isMin := o.Func == ast.Min || o.Func == ast.ArgMin
			ext := globalExt{}
			for _, part := range parts {
				if i >= len(part.global) || !part.global[i].ok {
					continue
				}
				g := part.global[i]
				if !ext.ok || (isMin && g.val < ext.val) || (!isMin && g.val > ext.val) ||
					(g.val == ext.val && g.key < ext.key) {
					ext = g
				}
			}
			if ext.ok {
				switch o.Func {
				case ast.Min, ast.Max:
					out[i] = ext.val
				default:
					out[i] = float64(ext.key)
				}
			}
		case ClassMinMax:
			if !skipMinMax {
				out[i] = p.scanOutput(def, a, i, parts, rect, unit, args)
			}
		case ClassScan:
			out[i] = p.scanOutput(def, a, i, parts, rect, unit, args)
		}
	}
	return out
}

// scanOutput evaluates one output by scanning the matching partitions with
// the axis bounds applied — the correct fallback for outputs the indices
// cannot serve on the single-probe path.
func (p *Indexed) scanOutput(def *ast.AggDef, a *AggAnalysis, outIdx int, parts []*aggPart, rect geom.Rect, unit, args []float64) float64 {
	p.Stats.ScanProbes++
	dl := interp.DefParams(def)
	accs := interp.NewAggAccs(def, p.prog.Schema, unit)
	acc := accs[outIdx]
	xCol, yCol := p.axisCols(a.Axes)
	for _, part := range parts {
		for _, ri := range part.rows {
			row := p.env.Rows[ri]
			x, y := p.axisVal(row, xCol), p.axisVal(row, yCol)
			if x < rect.MinX || x > rect.MaxX || y < rect.MinY || y > rect.MaxY {
				continue
			}
			// Residual conjuncts cannot exist here (Indexable implies none).
			acc.Add(row, func(t ast.Term) float64 {
				v, err := interp.EvalDefTermWith(t, dl, unit, args, row, p.prog, p.r)
				if err != nil {
					panic("exec: " + err.Error())
				}
				return v
			})
		}
	}
	return acc.Result()
}

// ---------------------------------------------------------------------------
// Batch evaluation (sweep line for MIN/MAX)

// EvalAggBatch answers the same probe for many units at once. Divisible,
// nearest and global outputs delegate to the per-probe path (already
// O(log n) each); MinMax-class outputs are batched through the sweep line
// of Section 5.3.1, grouping probes by their constant window height.
func (p *Indexed) EvalAggBatch(def *ast.AggDef, units [][]float64, args [][]float64) [][]float64 {
	a := p.an.Agg(def)
	results := make([][]float64, len(units))
	anyMinMax := false
	for i := range def.Outputs {
		if a.OutClass[i] == ClassMinMax {
			anyMinMax = true
		}
	}
	for i := range units {
		var arg []float64
		if args != nil {
			arg = args[i]
		}
		if anyMinMax && a.Indexable {
			results[i] = p.evalNonMinMax(def, a, units[i], arg)
		} else {
			results[i] = p.EvalAgg(def, units[i], arg)
		}
	}
	if !anyMinMax || !a.Indexable {
		return results
	}
	p.argFold = nil
	p.evalMinMaxBatch(def, a, units, args, results)
	return results
}

// BatchBeneficial reports whether EvalAggBatch answers def with a
// genuinely set-at-a-time algorithm: an indexable definition with at
// least one MIN/MAX-class output, where the whole probe set is sorted
// and swept in one pass. For every other definition EvalAggBatch is a
// loop over EvalAgg, so per-row (streaming) evaluation is bit-identical
// and batching buys nothing. Streaming callers use this to decide where
// a pipeline must block and collect its probe set; because each probe's
// sweep answer depends only on the indexed point set — never on the
// other probes — the guard-filtered (pushed-down) probe sets the
// streaming executor produces return exactly the values a full batch
// would.
func (p *Indexed) BatchBeneficial(def *ast.AggDef) bool {
	a := p.an.Agg(def)
	if !a.Indexable {
		return false
	}
	for i := range def.Outputs {
		if a.OutClass[i] == ClassMinMax {
			return true
		}
	}
	return false
}

// evalNonMinMax computes every output except MinMax ones, which stay at
// their identities for the sweep to overwrite.
func (p *Indexed) evalNonMinMax(def *ast.AggDef, a *AggAnalysis, unit, args []float64) []float64 {
	return p.evalCore(nil, def, unit, args, true)
}

type sweepGroup struct {
	height float64
	probes []sweepline.Probe
	rowIdx []int // result row per probe
	rects  []geom.Rect
}

// evalMinMaxBatch fills the MinMax-class outputs of results via sweeps.
func (p *Indexed) evalMinMaxBatch(def *ast.AggDef, a *AggAnalysis, units [][]float64, args [][]float64, results [][]float64) {
	dl := interp.DefParams(def)
	idx := p.aggIndexFor(def)
	schema := p.prog.Schema

	// Partition probes: each probe goes to the partitions its eq conjuncts
	// select. Group by (partition, window height). To keep the grouping
	// tractable we group first by height, then sweep each matching
	// partition with the group's probes filtered per-partition.
	type probeInfo struct {
		row    int
		rect   geom.Rect
		parts  []*aggPart
		active bool
	}
	infos := make([]probeInfo, len(units))
	for i, unit := range units {
		var arg []float64
		if args != nil {
			arg = args[i]
		}
		ok := true
		for _, c := range a.UOnly {
			pass, err := interp.EvalDefCond(c, dl, unit, arg, unit, p.prog, p.r)
			if err != nil {
				panic("exec: " + err.Error())
			}
			if !pass {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		rect, err := p.probeRect(a, dl, unit, arg)
		if err != nil {
			panic("exec: " + err.Error())
		}
		parts, err := p.matchParts(idx, dl, a.Eqs, unit, arg, false)
		if err != nil {
			panic("exec: " + err.Error())
		}
		infos[i] = probeInfo{row: i, rect: rect, parts: parts, active: true}
	}

	xCol, yCol := p.axisCols(a.Axes)
	for outIdx, o := range def.Outputs {
		if a.OutClass[outIdx] != ClassMinMax {
			continue
		}
		op := segtree.Min
		if o.Func == ast.Max || o.Func == ast.ArgMax {
			op = segtree.Max
		}
		// Group (partition, height) → probes.
		type groupKey struct {
			part   *aggPart
			height float64
		}
		groups := map[groupKey]*sweepGroup{}
		var order []groupKey
		for i := range infos {
			if !infos[i].active {
				continue
			}
			_, ryHalf := centerHalf(infos[i].rect.MinY, infos[i].rect.MaxY)
			h := 2 * ryHalf
			for _, part := range infos[i].parts {
				gk := groupKey{part, h}
				g := groups[gk]
				if g == nil {
					g = &sweepGroup{height: h}
					groups[gk] = g
					order = append(order, gk)
				}
				cx, rx := centerHalf(infos[i].rect.MinX, infos[i].rect.MaxX)
				cy, _ := centerHalf(infos[i].rect.MinY, infos[i].rect.MaxY)
				g.probes = append(g.probes, sweepline.Probe{
					X: cx, Y: cy, RX: rx,
					Exclude: sweepline.NoExclude,
				})
				g.rowIdx = append(g.rowIdx, infos[i].row)
			}
		}

		for _, gk := range order {
			g := groups[gk]
			part := gk.part
			pts := make([]sweepline.Point, len(part.rows))
			for j, ri := range part.rows {
				row := p.env.Rows[ri]
				v, err := interp.EvalDefTermWith(o.Arg, dl, row, nil, row, p.prog, p.r)
				if err != nil {
					panic("exec: " + err.Error())
				}
				pts[j] = sweepline.Point{
					X:     p.axisVal(row, xCol),
					Y:     p.axisVal(row, yCol),
					Value: v,
					Key:   int64(row[schema.KeyCol()]),
				}
			}
			p.Stats.Sweeps++
			ry := g.height / 2
			if math.IsInf(g.height, 1) {
				ry = math.Inf(1)
			}
			res := sweepline.Sweep(pts, g.probes, ry, op)
			for j, r := range res {
				ri := g.rowIdx[j]
				cur := results[ri][outIdx]
				switch o.Func {
				case ast.Min:
					if r.Found && r.Value < cur {
						results[ri][outIdx] = r.Value
					}
				case ast.Max:
					if r.Found && r.Value > cur {
						results[ri][outIdx] = r.Value
					}
				case ast.ArgMin, ast.ArgMax:
					// Fold arg-extrema across partitions: track via a
					// shadow value array.
					p.foldArg(results, ri, outIdx, r, o.Func)
				}
			}
		}
	}
}

// foldArg folds an arg-extremum sweep result into the running answer. The
// running value is stored as the key; to compare across partitions we keep
// the winning value in a side map keyed by (row, out).
type argState struct {
	val float64
	key int64
	ok  bool
}

func (p *Indexed) foldArg(results [][]float64, row, out int, r sweepline.Result, f ast.AggFunc) {
	if !r.Found {
		return
	}
	if p.argFold == nil {
		p.argFold = map[[2]int]argState{}
	}
	k := [2]int{row, out}
	cur, ok := p.argFold[k]
	isMin := f == ast.ArgMin
	better := !ok ||
		(isMin && r.Value < cur.val) || (!isMin && r.Value > cur.val) ||
		(r.Value == cur.val && r.Key < cur.key)
	if better {
		p.argFold[k] = argState{val: r.Value, key: r.Key, ok: true}
		results[row][out] = float64(r.Key)
	}
}

// ---------------------------------------------------------------------------
// Action target selection

type actIndex struct {
	a     *ActAnalysis
	parts map[string]*actPart
	order []string
	// rowPart mirrors aggIndex.rowPart for maintenance.
	rowPart []int32
}

func (idx *actIndex) buildRowPart(n int) {
	idx.rowPart = makeRowPart(n)
	for ord, key := range idx.order {
		for _, ri := range idx.parts[key].rows {
			idx.rowPart[ri] = int32(ord)
		}
	}
}

type actPart struct {
	rows []int
	rt   *rangetree.Tree
}

func (p *Indexed) actIndexFor(def *ast.ActDef) *actIndex {
	if idx, ok := p.actIdx[def]; ok {
		return idx
	}
	p.guardLazyBuild("action index")
	a := p.an.Act(def)
	idx := &actIndex{a: a, parts: map[string]*actPart{}}
	cols := eqCols(a.Eqs)
	dl := interp.DefParams(def)
	for i, row := range p.env.Rows {
		if !p.passesEOnly(a.EOnly, dl, row) {
			continue
		}
		key := p.partitionKey(row, cols)
		part := idx.parts[key]
		if part == nil {
			part = &actPart{}
			idx.parts[key] = part
			idx.order = append(idx.order, key)
		}
		part.rows = append(part.rows, i)
	}
	idx.buildRowPart(p.env.Len())
	for _, key := range idx.order {
		p.buildActPart(a, idx.parts[key])
	}
	p.actIdx[def] = idx
	return idx
}

// buildActPart (re)builds one partition's spatial tree from the current
// environment rows.
func (p *Indexed) buildActPart(a *ActAnalysis, part *actPart) {
	xCol, yCol := p.axisCols(a.Axes)
	pts := make([]rangetree.Point, len(part.rows))
	for j, ri := range part.rows {
		row := p.env.Rows[ri]
		pts[j] = rangetree.Point{X: p.axisVal(row, xCol), Y: p.axisVal(row, yCol)}
	}
	part.rt = rangetree.Build(pts, 0, nil)
	p.Stats.IndexBuilds++
}

func (p *Indexed) keyLookup() map[int64]int {
	if p.keyIndex == nil {
		p.guardLazyBuild("key lookup")
		p.keyIndex = make(map[int64]int, p.env.Len())
		kc := p.prog.Schema.KeyCol()
		for i, row := range p.env.Rows {
			p.keyIndex[int64(row[kc])] = i
		}
	}
	return p.keyIndex
}

// RowByKey resolves an environment row through the key index in O(1).
// On a frozen provider (or a fork of one) the index already exists and
// the call is read-only, so concurrent readers may share it.
func (p *Indexed) RowByKey(key int64) ([]float64, bool) {
	ri, ok := p.keyLookup()[key]
	if !ok {
		return nil, false
	}
	return p.env.Rows[ri], true
}

// SelectTargets visits the action's targets using the classified strategy:
// key lookups are O(1), area actions are O(log n + k) range-tree reports,
// everything else scans (matching the naive provider exactly).
func (p *Indexed) SelectTargets(def *ast.ActDef, unit []float64, args []float64, visit func([]float64)) {
	a := p.an.Act(def)
	dl := interp.DefParams(def)
	for _, c := range a.UOnly {
		ok, err := interp.EvalDefCond(c, dl, unit, args, unit, p.prog, p.r)
		if err != nil {
			panic("exec: " + err.Error())
		}
		if !ok {
			return
		}
	}
	switch a.Class {
	case ActByKey:
		keyVal, err := interp.EvalDefTermWith(a.KeyTerm, dl, unit, args, unit, p.prog, p.r)
		if err != nil {
			panic("exec: " + err.Error())
		}
		if ri, ok := p.keyLookup()[int64(keyVal)]; ok {
			row := p.env.Rows[ri]
			if float64(int64(keyVal)) == row[p.prog.Schema.KeyCol()] {
				// Verify the full WHERE clause on the one candidate: the
				// classifier only guarantees the key conjunct.
				pass, err := interp.EvalDefCond(def.Where, dl, unit, args, row, p.prog, p.r)
				if err != nil {
					panic("exec: " + err.Error())
				}
				if pass {
					visit(row)
				}
			}
		}
	case ActArea:
		idx := p.actIndexFor(def)
		aggA := AggAnalysis{Def: nil, Axes: a.Axes} // reuse probeRect shape
		rect, err := p.probeRect(&aggA, dl, unit, args)
		if err != nil {
			panic("exec: " + err.Error())
		}
		type req struct {
			col int
			val float64
			neq bool
		}
		reqs := make([]req, len(a.Eqs))
		for i, eq := range a.Eqs {
			v, err := interp.EvalDefTermWith(eq.Term, dl, unit, args, unit, p.prog, p.r)
			if err != nil {
				panic("exec: " + err.Error())
			}
			reqs[i] = req{col: eq.Col, val: v, neq: eq.Neq}
		}
		for _, key := range idx.order {
			part := idx.parts[key]
			if len(part.rows) == 0 {
				continue
			}
			sample := p.env.Rows[part.rows[0]]
			ok := true
			for _, rq := range reqs {
				if rq.neq {
					if sample[rq.col] == rq.val {
						ok = false
					}
				} else if sample[rq.col] != rq.val {
					ok = false
				}
			}
			if !ok {
				continue
			}
			part.rt.Report(rect, func(j int) {
				visit(p.env.Rows[part.rows[j]])
			})
		}
	default:
		p.Stats.ScanProbes++
		p.naive.SelectTargets(def, unit, args, visit)
	}
}

// centerHalf converts an interval to (center, half-extent). A doubly
// unbounded interval maps to (0, +Inf) — which is only produced for an
// absent index axis, where every point carries the constant coordinate 0.
func centerHalf(lo, hi float64) (float64, float64) {
	if math.IsInf(lo, -1) && math.IsInf(hi, 1) {
		return 0, math.Inf(1)
	}
	return (lo + hi) / 2, (hi - lo) / 2
}
