package exec

import (
	"math"
	"testing"

	"github.com/epicscale/sgl/internal/rng"
	"github.com/epicscale/sgl/internal/table"
)

// mustPanic asserts fn panics.
func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s should panic", what)
		}
	}()
	fn()
}

// Fork without Freeze was documented unsafe but previously raced
// silently; now it must panic immediately.
func TestForkBeforeFreezePanics(t *testing.T) {
	prog := compile(t, kitchenSinkScript)
	an := NewAnalyzer(prog, categoricals())
	env := randomArmy(t, 1, 16, 20)
	prov := NewIndexed(an, env, rng.New(1).Tick(0))
	mustPanic(t, "Fork before Freeze", func() { prov.Fork() })

	// After Freeze, Fork is fine and probes work.
	prov.Freeze()
	f := prov.Fork()
	def := prog.Script.Agg("CountEnemiesInRange")
	out := f.EvalAgg(def, env.Rows[0], []float64{8})
	if len(out) != 1 {
		t.Fatalf("forked probe returned %v", out)
	}
}

// A forked view must refuse to build any index lazily, even if its cache
// were somehow incomplete — the guard is the regression test's subject.
func TestForkedLazyBuildPanics(t *testing.T) {
	prog := compile(t, kitchenSinkScript)
	an := NewAnalyzer(prog, categoricals())
	env := randomArmy(t, 2, 16, 20)
	prov := NewIndexed(an, env, rng.New(2).Tick(0))
	// White-box: mark the view forked without freezing, the state a racy
	// Fork used to produce.
	view := *prov
	view.forked = true
	def := prog.Script.Agg("CountEnemiesInRange")
	mustPanic(t, "lazy aggregate build on forked view", func() {
		view.EvalAgg(def, env.Rows[0], []float64{8})
	})
	mustPanic(t, "lazy key lookup on forked view", func() {
		view.keyLookup()
	})
}

// mutateRows applies a synthetic "tick" to the environment: some units
// move, some take damage, one dies and respawns across the map, one
// changes nothing. Returns the delta a bit-compare would capture.
func mutateRows(env *table.Table, snap [][]float64) Delta {
	s := env.Schema
	posx, posy := s.MustCol("posx"), s.MustCol("posy")
	health, cd := s.MustCol("health"), s.MustCol("cooldown")
	for i, row := range env.Rows {
		switch i % 16 {
		case 0: // moves
			row[posx] += 1
		case 1: // takes damage
			row[health] -= 2
		case 2: // cools down
			if row[cd] > 0 {
				row[cd]--
			}
		case 3: // dies and respawns far away
			row[health] = row[s.MustCol("maxhealth")]
			row[posx], row[posy] = float64(90+i), float64(90+i)
		default: // untouched
		}
	}
	var d Delta
	for i, row := range env.Rows {
		var m uint64
		for c, v := range row {
			if math.Float64bits(v) != math.Float64bits(snap[i][c]) {
				b := c
				if b > 63 {
					b = 63
				}
				m |= 1 << b
			}
		}
		if m != 0 {
			d.Dirty = append(d.Dirty, i)
			d.Masks = append(d.Masks, m)
		}
	}
	return d
}

// TestMaintainFromMatchesFreshBuild is the exec-level differential: a
// provider maintained from the previous tick's structures must answer
// every aggregate probe, batch probe, and target selection exactly like a
// freshly built provider over the same mutated environment.
func TestMaintainFromMatchesFreshBuild(t *testing.T) {
	prog := compile(t, kitchenSinkScript)
	an := NewAnalyzer(prog, categoricals())
	for _, seed := range []uint64{3, 4, 5} {
		env := randomArmy(t, seed, 48, 24)
		r0 := rng.New(seed).Tick(0)
		prev := NewIndexed(an, env, r0)
		prev.Freeze()

		snap := make([][]float64, env.Len())
		for i, row := range env.Rows {
			snap[i] = append([]float64(nil), row...)
		}
		d := mutateRows(env, snap)
		if len(d.Dirty) == 0 {
			t.Fatal("mutation produced an empty delta")
		}

		r1 := rng.New(seed).Tick(1)
		fresh := NewIndexed(an, env, r1)
		fresh.Freeze()
		maint := NewIndexed(an, env, r1)
		if !maint.MaintainFrom(prev, d, 1) {
			t.Fatal("MaintainFrom did not maintain anything")
		}
		maint.Freeze()
		if maint.Stats.IndexReuses == 0 {
			t.Error("expected some structures to be reused")
		}

		for _, def := range prog.Script.Aggs {
			args := [][]float64{nil}
			if len(def.Params) > 1 {
				args[0] = []float64{8}
			}
			units := env.Rows
			batchFresh := fresh.EvalAggBatch(def, units, repeatArgs(args[0], len(units)))
			batchMaint := maint.EvalAggBatch(def, units, repeatArgs(args[0], len(units)))
			for i := range units {
				pf := fresh.EvalAgg(def, units[i], args[0])
				pm := maint.EvalAgg(def, units[i], args[0])
				for c := range pf {
					if math.Float64bits(pf[c]) != math.Float64bits(pm[c]) {
						t.Fatalf("seed %d %s unit %d out %d: fresh %v maintained %v",
							seed, def.Name, i, c, pf[c], pm[c])
					}
					if math.Float64bits(batchFresh[i][c]) != math.Float64bits(batchMaint[i][c]) {
						t.Fatalf("seed %d %s unit %d out %d (batch): fresh %v maintained %v",
							seed, def.Name, i, c, batchFresh[i][c], batchMaint[i][c])
					}
				}
			}
		}

		for _, def := range prog.Script.Acts {
			for i, unit := range env.Rows {
				args := make([]float64, len(def.Params)-1)
				for j := range args {
					args[j] = float64(i % 7)
				}
				var a, b [][]float64
				fresh.SelectTargets(def, unit, args, func(row []float64) { a = append(a, row) })
				maint.SelectTargets(def, unit, args, func(row []float64) { b = append(b, row) })
				if len(a) != len(b) {
					t.Fatalf("seed %d %s unit %d: fresh %d targets, maintained %d", seed, def.Name, i, len(a), len(b))
				}
				for j := range a {
					if &a[j][0] != &b[j][0] {
						t.Fatalf("seed %d %s unit %d: target %d differs", seed, def.Name, i, j)
					}
				}
			}
		}
	}
}

func repeatArgs(arg []float64, n int) [][]float64 {
	if arg == nil {
		return nil
	}
	out := make([][]float64, n)
	for i := range out {
		out[i] = arg
	}
	return out
}

// A threshold of zero must push every definition with relevant churn to
// the fallback path, leaving the provider to rebuild lazily — and the
// fallback counter must say so.
func TestMaintainFromThresholdFallback(t *testing.T) {
	prog := compile(t, kitchenSinkScript)
	an := NewAnalyzer(prog, categoricals())
	env := randomArmy(t, 9, 32, 20)
	prev := NewIndexed(an, env, rng.New(9).Tick(0))
	prev.Freeze()
	snap := make([][]float64, env.Len())
	for i, row := range env.Rows {
		snap[i] = append([]float64(nil), row...)
	}
	d := mutateRows(env, snap)

	maint := NewIndexed(an, env, rng.New(9).Tick(1))
	maint.MaintainFrom(prev, d, 0)
	if maint.Stats.MaintainFallbacks == 0 {
		t.Fatal("zero threshold should force fallbacks")
	}
}

// MaintainFrom must reject a provider over a different population.
func TestMaintainFromRejectsMismatch(t *testing.T) {
	prog := compile(t, kitchenSinkScript)
	an := NewAnalyzer(prog, categoricals())
	envA := randomArmy(t, 6, 32, 20)
	envB := randomArmy(t, 6, 16, 20)
	prev := NewIndexed(an, envA, rng.New(6).Tick(0))
	prev.Freeze()
	cur := NewIndexed(an, envB, rng.New(6).Tick(1))
	if cur.MaintainFrom(prev, Delta{}, 1) {
		t.Fatal("MaintainFrom should reject mismatched populations")
	}
}
