package exec

import (
	"math"
	"testing"

	"github.com/epicscale/sgl/internal/algebra"
	"github.com/epicscale/sgl/internal/rng"
	"github.com/epicscale/sgl/internal/sgl/ast"
	"github.com/epicscale/sgl/internal/sgl/interp"
	"github.com/epicscale/sgl/internal/sgl/parser"
	"github.com/epicscale/sgl/internal/sgl/sem"
	"github.com/epicscale/sgl/internal/table"
)

func testSchema(t testing.TB) *table.Schema {
	t.Helper()
	return table.MustSchema(
		table.Attr{Name: "key", Kind: table.Const},
		table.Attr{Name: "player", Kind: table.Const},
		table.Attr{Name: "unittype", Kind: table.Const},
		table.Attr{Name: "posx", Kind: table.Const},
		table.Attr{Name: "posy", Kind: table.Const},
		table.Attr{Name: "health", Kind: table.Const},
		table.Attr{Name: "maxhealth", Kind: table.Const},
		table.Attr{Name: "cooldown", Kind: table.Const},
		table.Attr{Name: "range", Kind: table.Const},
		table.Attr{Name: "morale", Kind: table.Const},
		table.Attr{Name: "weaponused", Kind: table.Max},
		table.Attr{Name: "movevect_x", Kind: table.Sum},
		table.Attr{Name: "movevect_y", Kind: table.Sum},
		table.Attr{Name: "damage", Kind: table.Sum},
		table.Attr{Name: "inaura", Kind: table.Max},
	)
}

var testConsts = map[string]float64{
	"_ARROW_DAMAGE": 6, "_ARMOR": 2, "_HEAL_AURA": 4, "_HEALER_RANGE": 10,
}

const kitchenSinkScript = `
aggregate CountEnemiesInRange(u, range) :=
  count(*)
  over e where e.posx >= u.posx - range and e.posx <= u.posx + range
    and e.posy >= u.posy - range and e.posy <= u.posy + range
    and e.player <> u.player;

aggregate EnemyStats(u, range) :=
  count(*) as n, avg(e.posx) as cx, avg(e.posy) as cy,
  sum(e.health) as strength, stddev(e.posx) as spread
  over e where e.posx >= u.posx - range and e.posx <= u.posx + range
    and e.posy >= u.posy - range and e.posy <= u.posy + range
    and e.player <> u.player;

aggregate WeakestEnemyInRange(u, range) :=
  argmin(e.health) as key, min(e.health) as hp
  over e where e.posx >= u.posx - range and e.posx <= u.posx + range
    and e.posy >= u.posy - range and e.posy <= u.posy + range
    and e.player <> u.player;

aggregate NearestEnemy(u) :=
  nearestkey() as key, nearestdist() as dist
  over e where e.player <> u.player;

aggregate NearestWoundedFriend(u) :=
  nearestkey() as key
  over e where e.player = u.player and e.health < e.maxhealth;

aggregate StrongestAnywhere(u) :=
  argmax(e.health) as key, max(e.health) as hp
  over e where e.player <> u.player;

aggregate WoundedArchersNear(u, range) :=
  count(*)
  over e where e.posx >= u.posx - range and e.posx <= u.posx + range
    and e.posy >= u.posy - range and e.posy <= u.posy + range
    and e.player <> u.player and e.unittype = 1
    and e.health < 15;

action FireAt(u, target_key) :=
  on e where e.key = target_key
  set damage = _ARROW_DAMAGE - _ARMOR;

action MarkFired(u) :=
  on e where e.key = u.key
  set weaponused = 1;

action MoveInDirection(u, dx, dy) :=
  on e where e.key = u.key
  set movevect_x = dx, movevect_y = dy;

action Heal(u) :=
  on e where u.player = e.player
    and e.posx >= u.posx - _HEALER_RANGE and e.posx <= u.posx + _HEALER_RANGE
    and e.posy >= u.posy - _HEALER_RANGE and e.posy <= u.posy + _HEALER_RANGE
  set inaura = _HEAL_AURA;

function main(u) {
  (let stats = EnemyStats(u, u.range))
  (let c = CountEnemiesInRange(u, u.range)) {
    if u.unittype = 2 then {
      if NearestWoundedFriend(u) >= 0 then perform Heal(u)
    };
    if c > u.morale and u.unittype < 2 then
      perform MoveInDirection(u, (u.posx, u.posy) - (stats.cx, stats.cy));
    else if c > 0 and u.cooldown = 0 and u.unittype < 2 then
      (let w = WeakestEnemyInRange(u, u.range)) {
        if w.key >= 0 then {
          perform FireAt(u, w.key);
          perform MarkFired(u)
        }
      }
  }
}
`

func compile(t testing.TB, src string) *sem.Program {
	t.Helper()
	s, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := sem.Check(s, testSchema(t), testConsts)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return p
}

func randomArmy(t testing.TB, seed uint64, n int, side int) *table.Table {
	t.Helper()
	st := rng.NewStream(rng.New(seed), 70)
	env := table.New(testSchema(t), n)
	for i := 0; i < n; i++ {
		maxHP := float64(10 + st.Intn(20))
		env.Append([]float64{
			float64(i),                  // key
			float64(i % 2),              // player
			float64(st.Intn(3)),         // unittype: 0 knight, 1 archer, 2 healer
			float64(st.Intn(side)),      // posx
			float64(st.Intn(side)),      // posy
			maxHP - float64(st.Intn(8)), // health
			maxHP,                       // maxhealth
			float64(st.Intn(3)),         // cooldown
			float64(4 + 2*st.Intn(3)),   // range (few distinct values)
			float64(st.Intn(6)),         // morale
			0, 0, 0, 0, 0,
		})
	}
	return env
}

func categoricals() []string { return []string{"player", "unittype"} }

func TestClassification(t *testing.T) {
	prog := compile(t, kitchenSinkScript)
	an := NewAnalyzer(prog, categoricals())

	count := an.Agg(prog.Script.Agg("CountEnemiesInRange"))
	if !count.Indexable {
		t.Fatal("CountEnemiesInRange should be indexable")
	}
	if len(count.Axes) != 2 || len(count.Eqs) != 1 || !count.Eqs[0].Neq {
		t.Fatalf("count analysis: axes=%d eqs=%+v", len(count.Axes), count.Eqs)
	}
	if count.OutClass[0] != ClassDivisible {
		t.Fatalf("count class = %v", count.OutClass[0])
	}

	stats := an.Agg(prog.Script.Agg("EnemyStats"))
	for i, c := range stats.OutClass {
		if c != ClassDivisible {
			t.Fatalf("EnemyStats output %d class = %v", i, c)
		}
	}

	weak := an.Agg(prog.Script.Agg("WeakestEnemyInRange"))
	if weak.OutClass[0] != ClassMinMax || weak.OutClass[1] != ClassMinMax {
		t.Fatalf("weakest classes = %v", weak.OutClass)
	}

	near := an.Agg(prog.Script.Agg("NearestEnemy"))
	if near.OutClass[0] != ClassNearest || near.OutClass[1] != ClassNearest {
		t.Fatalf("nearest classes = %v", near.OutClass)
	}

	strong := an.Agg(prog.Script.Agg("StrongestAnywhere"))
	if strong.OutClass[0] != ClassGlobal || strong.OutClass[1] != ClassGlobal {
		t.Fatalf("global classes = %v", strong.OutClass)
	}

	wounded := an.Agg(prog.Script.Agg("WoundedArchersNear"))
	if !wounded.Indexable || wounded.OutClass[0] != ClassDivisible {
		t.Fatalf("wounded: indexable=%v class=%v", wounded.Indexable, wounded.OutClass)
	}
	if len(wounded.EOnly) != 2 {
		// e.unittype = 1 (constant RHS) and e.health < 15 both fold into
		// the build-time partition filter.
		t.Fatalf("wounded e-only conjuncts = %d, want 2", len(wounded.EOnly))
	}

	fire := an.Act(prog.Script.Act("FireAt"))
	if fire.Class != ActByKey {
		t.Fatalf("FireAt class = %v", fire.Class)
	}
	mark := an.Act(prog.Script.Act("MarkFired"))
	if mark.Class != ActByKey {
		t.Fatalf("MarkFired class = %v", mark.Class)
	}
	heal := an.Act(prog.Script.Act("Heal"))
	if heal.Class != ActArea || !heal.Deferrable {
		t.Fatalf("Heal class = %v deferrable = %v", heal.Class, heal.Deferrable)
	}
}

// The central differential test: every aggregate of every definition must
// agree between Naive and Indexed for every unit.
func TestIndexedMatchesNaivePerAggregate(t *testing.T) {
	prog := compile(t, kitchenSinkScript)
	an := NewAnalyzer(prog, categoricals())
	for seed := uint64(1); seed <= 3; seed++ {
		env := randomArmy(t, seed, 120, 40)
		r := rng.New(seed).Tick(2)
		naive := interp.NewNaive(prog, env, r)
		indexed := NewIndexed(an, env, r)
		for _, def := range prog.Script.Aggs {
			var args []float64
			if len(def.Params) > 1 {
				args = []float64{6} // the range parameter
			}
			for _, u := range env.Rows {
				want := naive.EvalAgg(def, u, args)
				got := indexed.EvalAgg(def, u, args)
				for i := range want {
					same := want[i] == got[i] ||
						(math.IsNaN(want[i]) && math.IsNaN(got[i])) ||
						math.Abs(want[i]-got[i]) < 1e-9
					if !same {
						t.Fatalf("seed %d agg %s unit %v output %d (%s): naive %v, indexed %v",
							seed, def.Name, u[0], i, an.Agg(def).OutClass[i], want[i], got[i])
					}
				}
			}
		}
	}
}

// Batch evaluation must agree with per-probe evaluation (and therefore
// with naive) for every output class, especially the sweepline MinMax path.
func TestBatchMatchesPerProbe(t *testing.T) {
	prog := compile(t, kitchenSinkScript)
	an := NewAnalyzer(prog, categoricals())
	env := randomArmy(t, 7, 150, 40)
	r := rng.New(7).Tick(4)

	for _, def := range prog.Script.Aggs {
		units := env.Rows
		var args [][]float64
		if len(def.Params) > 1 {
			args = make([][]float64, len(units))
			for i := range args {
				args[i] = []float64{env.Rows[i][env.Schema.MustCol("range")]}
			}
		}
		indexed := NewIndexed(an, env, r)
		batch := indexed.EvalAggBatch(def, units, args)
		fresh := NewIndexed(an, env, r)
		for i, u := range units {
			var arg []float64
			if args != nil {
				arg = args[i]
			}
			want := fresh.EvalAgg(def, u, arg)
			for j := range want {
				same := want[j] == batch[i][j] ||
					(math.IsNaN(want[j]) && math.IsNaN(batch[i][j])) ||
					math.Abs(want[j]-batch[i][j]) < 1e-9
				if !same {
					t.Fatalf("agg %s unit %d output %d: per-probe %v, batch %v",
						def.Name, i, j, want[j], batch[i][j])
				}
			}
		}
	}
}

func TestSelectTargetsMatchesNaive(t *testing.T) {
	prog := compile(t, kitchenSinkScript)
	an := NewAnalyzer(prog, categoricals())
	env := randomArmy(t, 9, 100, 30)
	r := rng.New(9).Tick(1)
	naive := interp.NewNaive(prog, env, r)
	indexed := NewIndexed(an, env, r)
	kc := env.Schema.KeyCol()
	for _, def := range prog.Script.Acts {
		args := make([]float64, len(def.Params)-1)
		for i := range args {
			args[i] = float64(i + 3) // FireAt target 3; Move deltas
		}
		for _, u := range env.Rows {
			collect := func(p interp.Provider) map[int64]int {
				out := map[int64]int{}
				p.SelectTargets(def, u, args, func(tgt []float64) {
					out[int64(tgt[kc])]++
				})
				return out
			}
			want := collect(naive)
			got := collect(indexed)
			if len(want) != len(got) {
				t.Fatalf("act %s unit %v: naive %d targets, indexed %d", def.Name, u[0], len(want), len(got))
			}
			for k, n := range want {
				if got[k] != n {
					t.Fatalf("act %s unit %v target %d: naive %d, indexed %d", def.Name, u[0], k, n, got[k])
				}
			}
		}
	}
}

// Full-tick differential test: interpreter+naive vs compiled plan+indexed
// must produce identical environments.
func TestFullTickDifferential(t *testing.T) {
	prog := compile(t, kitchenSinkScript)
	an := NewAnalyzer(prog, categoricals())
	for seed := uint64(1); seed <= 4; seed++ {
		env := randomArmy(t, seed, 80, 30)
		r := rng.New(seed).Tick(5)
		want, err := interp.RunTickNaive(prog, env, r)
		if err != nil {
			t.Fatal(err)
		}
		got, err := algebra.RunTick(prog, env, NewIndexed(an, env, r), r)
		if err != nil {
			t.Fatal(err)
		}
		if !got.AlmostEqualContents(want, 1e-9) {
			t.Fatalf("seed %d: indexed tick differs from naive tick", seed)
		}
	}
}

func TestUOnlyFalseGivesIdentities(t *testing.T) {
	src := `
aggregate C(u, range) :=
  count(*) as n, min(e.health) as mn
  over e where u.cooldown = 0
    and e.posx >= u.posx - range and e.posx <= u.posx + range
    and e.posy >= u.posy - range and e.posy <= u.posy + range;
function main(u) {}`
	prog := compile(t, src)
	an := NewAnalyzer(prog, categoricals())
	env := randomArmy(t, 3, 20, 10)
	r := rng.New(3).Tick(1)
	indexed := NewIndexed(an, env, r)
	// Find a unit with nonzero cooldown.
	var unit []float64
	for _, u := range env.Rows {
		if u[env.Schema.MustCol("cooldown")] != 0 {
			unit = u
			break
		}
	}
	if unit == nil {
		t.Skip("no unit on cooldown in fixture")
	}
	out := indexed.EvalAgg(prog.Script.Agg("C"), unit, []float64{5})
	if out[0] != 0 || !math.IsInf(out[1], 1) {
		t.Fatalf("identities = %v", out)
	}
}

func TestNonIndexableFallsBackToNaive(t *testing.T) {
	// A residual conjunct (sum of two e-attributes) forces a scan.
	src := `
aggregate Diag(u) := count(*) over e where e.posx + e.posy <= u.posx;
function main(u) {}`
	prog := compile(t, src)
	an := NewAnalyzer(prog, categoricals())
	a := an.Agg(prog.Script.Agg("Diag"))
	if a.Indexable {
		t.Fatal("Diag should not be indexable")
	}
	env := randomArmy(t, 5, 50, 20)
	r := rng.New(5).Tick(1)
	naive := interp.NewNaive(prog, env, r)
	indexed := NewIndexed(an, env, r)
	for _, u := range env.Rows {
		if naive.EvalAgg(prog.Script.Agg("Diag"), u, nil)[0] != indexed.EvalAgg(prog.Script.Agg("Diag"), u, nil)[0] {
			t.Fatal("fallback disagrees with naive")
		}
	}
}

func TestStatsCountWork(t *testing.T) {
	prog := compile(t, kitchenSinkScript)
	an := NewAnalyzer(prog, categoricals())
	env := randomArmy(t, 11, 60, 20)
	r := rng.New(11).Tick(1)
	indexed := NewIndexed(an, env, r)
	def := prog.Script.Agg("CountEnemiesInRange")
	for _, u := range env.Rows {
		indexed.EvalAgg(def, u, []float64{5})
	}
	if indexed.Stats.IndexBuilds == 0 {
		t.Error("expected index builds to be counted")
	}
	if indexed.Stats.TreeProbes < len(env.Rows) {
		t.Errorf("TreeProbes = %d, want >= %d", indexed.Stats.TreeProbes, len(env.Rows))
	}
}

func TestOutputClassString(t *testing.T) {
	if ClassDivisible.String() != "divisible" || ActArea.String() != "area" {
		t.Fatal("String labels wrong")
	}
}

var benchSink []float64

func BenchmarkIndexedCountProbe(b *testing.B) {
	prog := compile(b, kitchenSinkScript)
	an := NewAnalyzer(prog, categoricals())
	env := randomArmy(b, 42, 5000, 700)
	r := rng.New(42).Tick(1)
	indexed := NewIndexed(an, env, r)
	def := prog.Script.Agg("CountEnemiesInRange")
	indexed.EvalAgg(def, env.Rows[0], []float64{20}) // build once
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = indexed.EvalAgg(def, env.Rows[i%env.Len()], []float64{20})
	}
}

func BenchmarkNaiveCountProbe(b *testing.B) {
	prog := compile(b, kitchenSinkScript)
	env := randomArmy(b, 42, 5000, 700)
	r := rng.New(42).Tick(1)
	naive := interp.NewNaive(prog, env, r)
	def := prog.Script.Agg("CountEnemiesInRange")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = naive.EvalAgg(def, env.Rows[i%env.Len()], []float64{20})
	}
}

var _ = ast.Count // keep ast import if assertions change
