// Maintained query answers: the answer half of "answering queries under
// updates" (Berkholz, Keppeler & Schweikardt — see PAPERS.md). Index
// maintenance (maintain.go) keeps the *structures* a probe walks cheap
// to rebuild; this file keeps a specific probe's *result* cheap to keep
// current. For a fixed (definition, probe row, arguments) triple the
// answer is a pure fold over the environment, so a per-tick Delta lets
// three verdicts be decided without rerunning the fold:
//
//   - untouched: no dirty row's changed-column mask intersects the
//     columns the answer reads → the cached values are still exact;
//   - patched: few rows are relevant and every output is divisible
//     (count/sum/avg/stddev) → re-evaluate membership and argument
//     contributions for just the dirty rows, then refold;
//   - rederive: anything else (non-divisible outputs, churn above the
//     caller's threshold, population change) → the caller re-derives
//     through its usual evaluation path.
//
// Exactness. An Answer stores, per environment row, the membership bit
// and each divisible output's argument value — both pure functions of
// the row, the frozen probe row, and the arguments. Values refolds those
// contributions in ascending row order with exactly the accumulator
// operations the naive scan uses, so a patched answer is bit-identical
// to a from-scratch scan of the current environment, not merely close.
package exec

import (
	"fmt"
	"math"

	"github.com/epicscale/sgl/internal/rng"
	"github.com/epicscale/sgl/internal/sgl/ast"
	"github.com/epicscale/sgl/internal/sgl/interp"
	"github.com/epicscale/sgl/internal/sgl/sem"
	"github.com/epicscale/sgl/internal/table"
)

// AnswerPlan classifies one aggregate definition for answer maintenance:
// which environment columns the answer depends on, and whether every
// output is divisible (patchable in place). A plan is immutable and may
// be shared by any number of Answers and goroutines.
type AnswerPlan struct {
	prog *sem.Program
	def  *ast.AggDef
	// read is every e-column the answer is a function of: WHERE-clause
	// references, output argument references, the key column for outputs
	// that report row identity, and the position columns for nearest
	// outputs (which implicitly measure from posx/posy).
	read      depMask
	divisible bool
}

// NewAnswerPlan builds the maintenance classification for def. The
// column walkers only consult the schema, so no analyzer is needed.
func NewAnswerPlan(prog *sem.Program, def *ast.AggDef) *AnswerPlan {
	an := &Analyzer{prog: prog}
	p := &AnswerPlan{prog: prog, def: def, divisible: true}
	if def.Where != nil {
		p.read |= an.condECols(def.Where)
	}
	for _, out := range def.Outputs {
		if out.Arg != nil {
			p.read |= an.termECols(out.Arg)
		}
		switch out.Func {
		case ast.Count, ast.Sum, ast.Avg, ast.Stddev:
			// divisible: old contributions subtract out / refold exactly.
		default:
			p.divisible = false
		}
		switch out.Func {
		case ast.ArgMin, ast.ArgMax:
			// The reported value is a row's key.
			p.read |= colBit(prog.Schema.KeyCol())
		case ast.NearestKey, ast.NearestDist, ast.NearestX, ast.NearestY:
			p.read |= colBit(prog.Schema.KeyCol())
			if c, ok := prog.Schema.Col("posx"); ok {
				p.read |= colBit(c)
			}
			if c, ok := prog.Schema.Col("posy"); ok {
				p.read |= colBit(c)
			}
		}
	}
	return p
}

// Divisible reports whether every output is a divisible aggregate, the
// precondition for patching the answer in place.
func (p *AnswerPlan) Divisible() bool { return p.divisible }

// Touched reports whether any dirty row's changed columns intersect the
// columns the answer reads. False means the cached answer is still
// exact — the tick provably could not have moved it.
func (p *AnswerPlan) Touched(d Delta) bool {
	for _, m := range d.Masks {
		if depMask(m)&p.read != 0 {
			return true
		}
	}
	return false
}

// RelevantDirty counts the dirty rows whose changed columns intersect
// the answer's read set — the churn measure the caller compares against
// its dirty-fraction threshold.
func (p *AnswerPlan) RelevantDirty(d Delta) int { return relevantDirty(d, p.read) }

// Answer is the maintained state of one evaluation: a frozen probe row
// and argument vector plus, per environment row, the membership bit and
// each output's argument contribution. Not safe for concurrent use; the
// caller serializes Patch/Values against each other.
type Answer struct {
	plan *AnswerPlan
	dl   interp.DefLike
	unit []float64 // private copy of the probe row
	args []float64

	n       int // population the state covers
	member  []bool
	contrib []float64 // row-major [n][len(outputs)] argument values
}

// NewAnswer evaluates def for (unit, args) over env with a full scan,
// recording the per-row state later Patch calls update. Only divisible
// plans can be maintained; others return an error. r is the tick's
// random source (query mode rejects Random, so it is never consulted,
// but the definition evaluator requires one).
func NewAnswer(plan *AnswerPlan, env *table.Table, unit, args []float64, r rng.TickSource) (*Answer, error) {
	if !plan.divisible {
		return nil, fmt.Errorf("exec: answer for %s has non-divisible outputs; use the provider path", plan.def.Name)
	}
	k := len(plan.def.Outputs)
	a := &Answer{
		plan: plan,
		dl:   interp.DefParams(plan.def),
		unit: append([]float64(nil), unit...),
		args: append([]float64(nil), args...),
		n:    env.Len(),
	}
	a.member = make([]bool, a.n)
	a.contrib = make([]float64, a.n*k)
	for i, row := range env.Rows {
		if err := a.refresh(i, row, r); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// refresh re-evaluates one row's membership and contributions.
func (a *Answer) refresh(i int, row []float64, r rng.TickSource) error {
	ok, err := interp.EvalDefCond(a.plan.def.Where, a.dl, a.unit, a.args, row, a.plan.prog, r)
	if err != nil {
		return err
	}
	a.member[i] = ok
	if !ok {
		return nil
	}
	k := len(a.plan.def.Outputs)
	for oi, out := range a.plan.def.Outputs {
		if out.Arg == nil {
			continue
		}
		v, err := interp.EvalDefTermWith(out.Arg, a.dl, a.unit, a.args, row, a.plan.prog, r)
		if err != nil {
			return err
		}
		a.contrib[i*k+oi] = v
	}
	return nil
}

// Patch brings the state current after a tick: every dirty row whose
// changed columns intersect the plan's read set is re-evaluated against
// the live environment. Clean rows (and dirty rows that only changed
// irrelevant columns) keep their stored contributions, which is exact
// because contributions are pure functions of the row. The environment
// must have the same population the Answer was built over.
func (a *Answer) Patch(env *table.Table, d Delta, r rng.TickSource) error {
	if env.Len() != a.n {
		return fmt.Errorf("exec: answer built over %d rows patched against %d", a.n, env.Len())
	}
	for j, i := range d.Dirty {
		if depMask(d.Masks[j])&a.plan.read == 0 {
			continue
		}
		if err := a.refresh(i, env.Rows[i], r); err != nil {
			return err
		}
	}
	return nil
}

// Values refolds the stored contributions into the output vector, in
// ascending row order with the scan accumulators' exact operations —
// bit-identical to interp.Naive.EvalAgg over the same environment.
func (a *Answer) Values() []float64 {
	k := len(a.plan.def.Outputs)
	out := make([]float64, k)
	for oi, o := range a.plan.def.Outputs {
		var n, sum, sumSq float64
		for i := 0; i < a.n; i++ {
			if !a.member[i] {
				continue
			}
			n++
			v := a.contrib[i*k+oi]
			sum += v
			sumSq += v * v
		}
		switch o.Func {
		case ast.Count:
			out[oi] = n
		case ast.Sum:
			out[oi] = sum
		case ast.Avg:
			if n == 0 {
				out[oi] = 0
			} else {
				out[oi] = sum / n
			}
		case ast.Stddev:
			if n == 0 {
				out[oi] = 0
			} else {
				mean := sum / n
				variance := sumSq/n - mean*mean
				if variance < 0 {
					variance = 0 // numerical guard, mirroring stddevAcc
				}
				out[oi] = math.Sqrt(variance)
			}
		}
	}
	return out
}
