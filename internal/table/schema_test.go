package table

import (
	"math"
	"strings"
	"testing"
)

func battleSchema(t testing.TB) *Schema {
	t.Helper()
	// The schema of paper Eq. (1).
	s, err := NewSchema(
		Attr{"key", Const}, Attr{"player", Const},
		Attr{"posx", Const}, Attr{"posy", Const},
		Attr{"health", Const}, Attr{"cooldown", Const},
		Attr{"weaponused", Max},
		Attr{"movevect_x", Sum}, Attr{"movevect_y", Sum},
		Attr{"damage", Sum}, Attr{"inaura", Max},
	)
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	return s
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{Const: "const", Sum: "sum", Max: "max", Min: "min", Kind(9): "Kind(9)"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestKindIdentityFold(t *testing.T) {
	if Sum.Identity() != 0 {
		t.Error("Sum identity != 0")
	}
	if !math.IsInf(Max.Identity(), -1) || !math.IsInf(Min.Identity(), 1) {
		t.Error("Max/Min identities wrong")
	}
	if Sum.Fold(2, 3) != 5 || Max.Fold(2, 3) != 3 || Min.Fold(2, 3) != 2 {
		t.Error("Fold wrong")
	}
	// Folding with the identity is a no-op.
	for _, k := range []Kind{Sum, Max, Min} {
		if k.Fold(k.Identity(), 7) != 7 {
			t.Errorf("%v: identity not neutral", k)
		}
	}
}

func TestKindConstPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"Identity": func() { Const.Identity() },
		"Fold":     func() { Const.Fold(1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on Const did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestNewSchemaValidation(t *testing.T) {
	if _, err := NewSchema(Attr{"a", Sum}); err == nil {
		t.Error("schema without key should fail")
	}
	if _, err := NewSchema(Attr{"key", Sum}); err == nil {
		t.Error("non-const key should fail")
	}
	if _, err := NewSchema(Attr{"key", Const}, Attr{"key", Sum}); err == nil {
		t.Error("duplicate names should fail")
	}
	if _, err := NewSchema(Attr{"key", Const}, Attr{"", Sum}); err == nil {
		t.Error("empty name should fail")
	}
}

func TestSchemaAccessors(t *testing.T) {
	s := battleSchema(t)
	if s.NumAttrs() != 11 {
		t.Fatalf("NumAttrs = %d", s.NumAttrs())
	}
	if s.KeyCol() != 0 {
		t.Fatalf("KeyCol = %d", s.KeyCol())
	}
	if i, ok := s.Col("damage"); !ok || i != 9 {
		t.Fatalf("Col(damage) = %d,%v", i, ok)
	}
	if _, ok := s.Col("nope"); ok {
		t.Fatal("Col(nope) should not exist")
	}
	if got := len(s.ConstCols()); got != 6 {
		t.Fatalf("ConstCols = %d, want 6", got)
	}
	if got := len(s.EffectCols()); got != 5 {
		t.Fatalf("EffectCols = %d, want 5", got)
	}
	if a := s.Attr(6); a.Name != "weaponused" || a.Kind != Max {
		t.Fatalf("Attr(6) = %v", a)
	}
	attrs := s.Attrs()
	attrs[0].Name = "mutated"
	if s.Attr(0).Name != "key" {
		t.Fatal("Attrs() must return a copy")
	}
}

func TestMustColPanics(t *testing.T) {
	s := battleSchema(t)
	defer func() {
		if recover() == nil {
			t.Fatal("MustCol on missing attr should panic")
		}
	}()
	s.MustCol("missing")
}

func TestSchemaEqual(t *testing.T) {
	a := battleSchema(t)
	b := battleSchema(t)
	if !a.Equal(b) || !a.Equal(a) {
		t.Fatal("identical schemas should be Equal")
	}
	c := MustSchema(Attr{"key", Const}, Attr{"damage", Sum})
	if a.Equal(c) {
		t.Fatal("different schemas should not be Equal")
	}
	if a.Equal(nil) {
		t.Fatal("Equal(nil) should be false")
	}
}

func TestSubschemaOf(t *testing.T) {
	e := battleSchema(t)
	sub := MustSchema(Attr{"key", Const}, Attr{"damage", Sum}, Attr{"inaura", Max})
	if !sub.SubschemaOf(e) {
		t.Fatal("sub should be a subschema of E")
	}
	wrongKind := MustSchema(Attr{"key", Const}, Attr{"damage", Max})
	if wrongKind.SubschemaOf(e) {
		t.Fatal("kind mismatch should fail SubschemaOf")
	}
	extra := MustSchema(Attr{"key", Const}, Attr{"mana", Sum})
	if extra.SubschemaOf(e) {
		t.Fatal("unknown attribute should fail SubschemaOf")
	}
}

func TestProject(t *testing.T) {
	e := battleSchema(t)
	p, err := e.Project("key", "damage")
	if err != nil {
		t.Fatal(err)
	}
	if p.NumAttrs() != 2 || p.Attr(1).Name != "damage" || p.Attr(1).Kind != Sum {
		t.Fatalf("Project result wrong: %v", p)
	}
	if _, err := e.Project("key", "ghost"); err == nil {
		t.Fatal("projecting a missing attribute should fail")
	}
	if _, err := e.Project("damage"); err == nil {
		t.Fatal("projecting away the key should fail")
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSchema should panic on invalid schema")
		}
	}()
	MustSchema(Attr{"a", Sum})
}

func TestSchemaString(t *testing.T) {
	s := MustSchema(Attr{"key", Const}, Attr{"damage", Sum})
	got := s.String()
	if !strings.Contains(got, "key:const") || !strings.Contains(got, "damage:sum") {
		t.Fatalf("String = %q", got)
	}
}
