package table

import (
	"math"
	"testing"
	"testing/quick"
)

// effectSchema is a compact schema for combine tests:
// key:const, player:const, dmg:sum, aura:max, freeze:min.
func effectSchema(t testing.TB) *Schema {
	t.Helper()
	return MustSchema(
		Attr{"key", Const}, Attr{"player", Const},
		Attr{"dmg", Sum}, Attr{"aura", Max}, Attr{"freeze", Min},
	)
}

func TestAppendWidthPanics(t *testing.T) {
	tb := New(effectSchema(t), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("Append with wrong width should panic")
		}
	}()
	tb.Append([]float64{1, 2})
}

func TestUnionSchemaMismatchPanics(t *testing.T) {
	a := New(effectSchema(t), 0)
	b := New(MustSchema(Attr{"key", Const}), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("Union with mismatched schema should panic")
		}
	}()
	a.Union(b)
}

func TestCombineFoldsByKind(t *testing.T) {
	tb := New(effectSchema(t), 0)
	// Two damage effects (stackable: sum), two auras (nonstackable: max),
	// two freeze priorities (min) on the same unit.
	tb.Append([]float64{1, 0, 5, 10, 3})
	tb.Append([]float64{1, 0, 7, 20, 2})
	got := tb.Combine()
	if got.Len() != 1 {
		t.Fatalf("Combine rows = %d, want 1", got.Len())
	}
	r := got.Rows[0]
	if r[2] != 12 {
		t.Errorf("sum(dmg) = %v, want 12", r[2])
	}
	if r[3] != 20 {
		t.Errorf("max(aura) = %v, want 20", r[3])
	}
	if r[4] != 2 {
		t.Errorf("min(freeze) = %v, want 2", r[4])
	}
}

func TestCombineGroupsByAllConstAttrs(t *testing.T) {
	tb := New(effectSchema(t), 0)
	// Same key but different player: two distinct const tuples, so Combine
	// must not merge them (⊕ groups by K *and* the const attributes).
	tb.Append([]float64{1, 0, 5, 0, 0})
	tb.Append([]float64{1, 1, 7, 0, 0})
	if got := tb.Combine(); got.Len() != 2 {
		t.Fatalf("rows = %d, want 2 (distinct const tuples)", got.Len())
	}
}

func TestCombinePreservesDistinctKeys(t *testing.T) {
	tb := New(effectSchema(t), 0)
	tb.Append([]float64{1, 0, 5, 1, 0})
	tb.Append([]float64{2, 0, 7, 2, 0})
	tb.Append([]float64{1, 0, 3, 9, 0})
	got := tb.Combine()
	if got.Len() != 2 {
		t.Fatalf("rows = %d, want 2", got.Len())
	}
	got.SortByKey()
	if got.Rows[0][2] != 8 || got.Rows[0][3] != 9 {
		t.Errorf("key 1 folded wrong: %v", got.Rows[0])
	}
	if got.Rows[1][2] != 7 || got.Rows[1][3] != 2 {
		t.Errorf("key 2 folded wrong: %v", got.Rows[1])
	}
}

func TestCombineEmptyTable(t *testing.T) {
	tb := New(effectSchema(t), 0)
	if got := tb.Combine(); got.Len() != 0 {
		t.Fatalf("Combine of empty = %d rows", got.Len())
	}
}

// randomTable builds a pseudo-random effect table with small keys so that
// groups actually collide.
func randomTable(t testing.TB, seed int64, n int) *Table {
	tb := New(effectSchema(t), n)
	s := seed
	next := func() float64 {
		s = s*6364136223846793005 + 1442695040888963407
		return float64((s>>33)%17) - 8
	}
	for i := 0; i < n; i++ {
		key := math.Abs(next())
		player := math.Mod(math.Abs(next()), 2)
		tb.Append([]float64{key, player, next(), next(), next()})
	}
	return tb
}

// Property (paper Eq. 3): ⊕(E1 ⊎ E2) = ⊕(⊕(E1) ⊎ E2).
func TestCombineAbsorption(t *testing.T) {
	f := func(seed1, seed2 int64, n1, n2 uint8) bool {
		e1 := randomTable(t, seed1, int(n1%40))
		e2 := randomTable(t, seed2, int(n2%40))
		lhs := e1.Union(e2).Combine()
		rhs := e1.Combine().Union(e2).Combine()
		return lhs.EqualContents(rhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: idempotence ⊕(⊕(E)) = ⊕(E).
func TestCombineIdempotent(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		e := randomTable(t, seed, int(n%60))
		once := e.Combine()
		return once.Combine().EqualContents(once)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: commutativity ⊕(E1 ⊎ E2) = ⊕(E2 ⊎ E1).
func TestCombineCommutative(t *testing.T) {
	f := func(seed1, seed2 int64, n1, n2 uint8) bool {
		e1 := randomTable(t, seed1, int(n1%40))
		e2 := randomTable(t, seed2, int(n2%40))
		return e1.CombineWith(e2).EqualContents(e2.CombineWith(e1))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: associativity (E1 ⊕ E2) ⊕ E3 = E1 ⊕ (E2 ⊕ E3).
func TestCombineAssociative(t *testing.T) {
	f := func(s1, s2, s3 int64) bool {
		e1 := randomTable(t, s1, 20)
		e2 := randomTable(t, s2, 20)
		e3 := randomTable(t, s3, 20)
		lhs := e1.CombineWith(e2).CombineWith(e3)
		rhs := e1.CombineWith(e2.CombineWith(e3))
		return lhs.EqualContents(rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a keyed table is a fixpoint of Combine (R^⊕ = ⊕R).
func TestCombineKeyedFixpoint(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		e := randomTable(t, seed, int(n%60)).Combine()
		if !e.Keyed() {
			// Same key may appear under two players; Keyed is about the key
			// alone, so skip those instances.
			return true
		}
		return e.Combine().EqualContents(e)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyedAndLookup(t *testing.T) {
	tb := New(effectSchema(t), 0)
	tb.Append([]float64{1, 0, 5, 0, 0})
	tb.Append([]float64{2, 0, 6, 0, 0})
	if !tb.Keyed() {
		t.Fatal("distinct keys should be Keyed")
	}
	if r := tb.Lookup(2); r == nil || r[2] != 6 {
		t.Fatalf("Lookup(2) = %v", r)
	}
	if r := tb.Lookup(99); r != nil {
		t.Fatalf("Lookup(99) = %v, want nil", r)
	}
	tb.Append([]float64{1, 1, 7, 0, 0})
	if tb.Keyed() {
		t.Fatal("duplicate key should not be Keyed")
	}
}

func TestCloneIsDeep(t *testing.T) {
	tb := New(effectSchema(t), 0)
	tb.Append([]float64{1, 0, 5, 0, 0})
	c := tb.Clone()
	c.Rows[0][2] = 99
	if tb.Rows[0][2] != 5 {
		t.Fatal("Clone shares row storage")
	}
}

func TestEqualContents(t *testing.T) {
	a := New(effectSchema(t), 0)
	a.Append([]float64{1, 0, 5, 0, 0})
	a.Append([]float64{2, 0, 6, 0, 0})
	b := New(effectSchema(t), 0)
	b.Append([]float64{2, 0, 6, 0, 0})
	b.Append([]float64{1, 0, 5, 0, 0})
	if !a.EqualContents(b) {
		t.Fatal("order must not matter")
	}
	b.Rows[0][2] = 7
	if a.EqualContents(b) {
		t.Fatal("value change must be detected")
	}
}

func TestEqualContentsNaN(t *testing.T) {
	s := effectSchema(t)
	a := New(s, 0)
	a.Append([]float64{1, 0, math.NaN(), 0, 0})
	b := New(s, 0)
	b.Append([]float64{1, 0, math.NaN(), 0, 0})
	if !a.EqualContents(b) {
		t.Fatal("NaN should compare equal to NaN in EqualContents")
	}
}

func TestAlmostEqualContents(t *testing.T) {
	a := New(effectSchema(t), 0)
	a.Append([]float64{1, 0, 5, 2, 0})
	b := New(effectSchema(t), 0)
	b.Append([]float64{1, 0, 5 + 1e-12, 2, 0})
	if !a.AlmostEqualContents(b, 1e-9) {
		t.Fatal("tiny float drift should pass AlmostEqualContents")
	}
	if a.AlmostEqualContents(b, 1e-15) {
		t.Fatal("drift above eps should fail")
	}
	c := New(effectSchema(t), 0)
	c.Append([]float64{1, 0, 5, math.Inf(-1), 0})
	d := New(effectSchema(t), 0)
	d.Append([]float64{1, 0, 5, math.Inf(-1), 0})
	if !c.AlmostEqualContents(d, 1e-9) {
		t.Fatal("matching infinities should pass")
	}
	d.Rows[0][3] = math.Inf(1)
	if c.AlmostEqualContents(d, 1e-9) {
		t.Fatal("opposite infinities should fail")
	}
}

func TestSortByKeyStable(t *testing.T) {
	tb := New(effectSchema(t), 0)
	tb.Append([]float64{2, 0, 1, 0, 0})
	tb.Append([]float64{1, 0, 2, 0, 0})
	tb.Append([]float64{1, 1, 3, 0, 0})
	tb.SortByKey()
	if tb.Rows[0][0] != 1 || tb.Rows[1][0] != 1 || tb.Rows[2][0] != 2 {
		t.Fatalf("not sorted: %v", tb.Rows)
	}
	if tb.Rows[0][2] != 2 || tb.Rows[1][2] != 3 {
		t.Fatalf("not stable: %v", tb.Rows)
	}
}

func BenchmarkCombine(b *testing.B) {
	tb := randomTable(b, 42, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Combine()
	}
}

// View shares storage with the parent and must window exactly [lo, hi).
func TestViewWindowsAndAliases(t *testing.T) {
	s := effectSchema(t)
	tab := New(s, 4)
	for i := 0; i < 4; i++ {
		row := make([]float64, s.NumAttrs())
		row[s.KeyCol()] = float64(i)
		tab.Append(row)
	}
	v := tab.View(1, 3)
	if v.Len() != 2 || v.Key(0) != 1 || v.Key(1) != 2 {
		t.Fatalf("View(1,3) windows wrong rows: len=%d", v.Len())
	}
	if full := tab.View(0, -1); full.Len() != 4 {
		t.Fatalf("View(0,-1) should cover all rows, got %d", full.Len())
	}
	// Shared storage: a write through the view is visible in the parent.
	v.Rows[0][s.KeyCol()] = 42
	if tab.Key(1) != 42 {
		t.Fatal("View must alias parent storage, not copy")
	}
}
