// Package table implements the paper's environment relation E (Section 4):
// a multiset table whose schema E(K, A1, …, Ak) tags every attribute with a
// combination type τ ∈ {const, sum, max, min}, together with the combination
// operator ⊕ of Section 4.2 that merges the effect tables produced by SGL
// scripts.
//
// Attributes of kind Const describe unit state and can never be the direct
// subject of an effect (position, health, cooldown, …). The remaining
// attributes are effect accumulators: Sum for stackable effects (damage,
// movement vectors), Max/Min for nonstackable ones (healing auras, priority
// effects). ⊕ groups rows by the const attributes and folds each effect
// attribute with its tagged aggregate.
package table

import (
	"fmt"
	"math"
	"strings"
)

// Kind is the combination type τ of an attribute (paper Section 4.2).
type Kind uint8

// The four combination types. Const attributes are grouped on by ⊕; the
// others are folded with the aggregate of the same name.
const (
	Const Kind = iota
	Sum
	Max
	Min
)

// String returns the lowercase tag name used in the paper.
func (k Kind) String() string {
	switch k {
	case Const:
		return "const"
	case Sum:
		return "sum"
	case Max:
		return "max"
	case Min:
		return "min"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Identity returns the neutral element of the kind's fold: 0 for Sum, -∞
// for Max, +∞ for Min. Effect attributes are initialized to their identity
// at the start of every tick. Const has no identity and panics.
func (k Kind) Identity() float64 {
	switch k {
	case Sum:
		return 0
	case Max:
		return math.Inf(-1)
	case Min:
		return math.Inf(1)
	default:
		panic("table: Identity of const attribute")
	}
}

// Fold combines two effect values according to the kind. Const panics.
func (k Kind) Fold(a, b float64) float64 {
	switch k {
	case Sum:
		return a + b
	case Max:
		return math.Max(a, b)
	case Min:
		return math.Min(a, b)
	default:
		panic("table: Fold on const attribute")
	}
}

// Attr is one column of the environment schema.
type Attr struct {
	Name string
	Kind Kind
}

// KeyAttr is the name of the distinguished key attribute K. Its kind is
// always Const ("the type of K is always const").
const KeyAttr = "key"

// Schema is an immutable environment schema. Construct with NewSchema;
// the zero value is not usable.
type Schema struct {
	attrs  []Attr
	byName map[string]int
	keyCol int
	consts []int // column indexes of const attributes, ascending
	fx     []int // column indexes of effect (non-const) attributes, ascending
}

// NewSchema builds a schema from the given attributes. It returns an error
// if names repeat, if any name is empty, or if there is no Const attribute
// named "key".
func NewSchema(attrs ...Attr) (*Schema, error) {
	s := &Schema{
		attrs:  append([]Attr(nil), attrs...),
		byName: make(map[string]int, len(attrs)),
		keyCol: -1,
	}
	for i, a := range s.attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("table: attribute %d has empty name", i)
		}
		if _, dup := s.byName[a.Name]; dup {
			return nil, fmt.Errorf("table: duplicate attribute %q", a.Name)
		}
		s.byName[a.Name] = i
		if a.Name == KeyAttr {
			if a.Kind != Const {
				return nil, fmt.Errorf("table: key attribute must be const, got %v", a.Kind)
			}
			s.keyCol = i
		}
		if a.Kind == Const {
			s.consts = append(s.consts, i)
		} else {
			s.fx = append(s.fx, i)
		}
	}
	if s.keyCol < 0 {
		return nil, fmt.Errorf("table: schema has no %q attribute", KeyAttr)
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error, for statically known schemas.
func MustSchema(attrs ...Attr) *Schema {
	s, err := NewSchema(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// NumAttrs returns the number of columns.
func (s *Schema) NumAttrs() int { return len(s.attrs) }

// Attr returns the i-th attribute.
func (s *Schema) Attr(i int) Attr { return s.attrs[i] }

// Attrs returns a copy of the attribute list.
func (s *Schema) Attrs() []Attr { return append([]Attr(nil), s.attrs...) }

// Col returns the column index of the named attribute.
func (s *Schema) Col(name string) (int, bool) {
	i, ok := s.byName[name]
	return i, ok
}

// MustCol is Col that panics if the attribute does not exist.
func (s *Schema) MustCol(name string) int {
	i, ok := s.byName[name]
	if !ok {
		panic(fmt.Sprintf("table: no attribute %q in schema %v", name, s))
	}
	return i
}

// KeyCol returns the column index of the key attribute K.
func (s *Schema) KeyCol() int { return s.keyCol }

// ConstCols returns the column indexes of const attributes (including the
// key), in ascending order. The returned slice must not be modified.
func (s *Schema) ConstCols() []int { return s.consts }

// EffectCols returns the column indexes of non-const attributes, in
// ascending order. The returned slice must not be modified.
func (s *Schema) EffectCols() []int { return s.fx }

// Equal reports whether two schemas have identical attribute lists.
func (s *Schema) Equal(o *Schema) bool {
	if s == o {
		return true
	}
	if o == nil || len(s.attrs) != len(o.attrs) {
		return false
	}
	for i := range s.attrs {
		if s.attrs[i] != o.attrs[i] {
			return false
		}
	}
	return true
}

// SubschemaOf reports whether every attribute of s appears, with the same
// kind, in o. ⊕-combination of an effect table into the environment requires
// the effect table's schema to be a subschema of E's (paper Section 4.2).
func (s *Schema) SubschemaOf(o *Schema) bool {
	for _, a := range s.attrs {
		j, ok := o.byName[a.Name]
		if !ok || o.attrs[j].Kind != a.Kind {
			return false
		}
	}
	return true
}

// Project returns a new schema with only the named attributes, in the given
// order. The key attribute must be included.
func (s *Schema) Project(names ...string) (*Schema, error) {
	attrs := make([]Attr, 0, len(names))
	for _, n := range names {
		i, ok := s.byName[n]
		if !ok {
			return nil, fmt.Errorf("table: project: no attribute %q", n)
		}
		attrs = append(attrs, s.attrs[i])
	}
	return NewSchema(attrs...)
}

// String renders the schema as E(name:kind, …).
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteString("E(")
	for i, a := range s.attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s:%s", a.Name, a.Kind)
	}
	b.WriteString(")")
	return b.String()
}
