// Fault injection for the crash-window tests: a writer that dies mid-
// stream at a chosen byte. The atomic-write discipline in this package
// claims a reader sees either the old complete file or the new complete
// file; the claim is only worth anything if tests can actually crash a
// write at every interesting offset, which is what FaultWriter is for.
package table

import (
	"errors"
	"io"
)

// ErrInjectedFault is the error a FaultWriter fails with once its byte
// budget is exhausted.
var ErrInjectedFault = errors.New("table: injected write fault")

// FaultWriter forwards writes to W until Limit bytes have passed, then
// fails every subsequent write (including the partial one that crosses
// the limit, whose in-budget prefix IS forwarded — a real crash tears
// mid-buffer, not at a friendly boundary) with ErrInjectedFault.
type FaultWriter struct {
	W     io.Writer
	Limit int
	n     int
}

// Write forwards p within the remaining budget and fails once it is
// spent.
func (f *FaultWriter) Write(p []byte) (int, error) {
	if f.n >= f.Limit {
		return 0, ErrInjectedFault
	}
	if rem := f.Limit - f.n; len(p) > rem {
		n, err := f.W.Write(p[:rem])
		f.n += n
		if err != nil {
			return n, err
		}
		return n, ErrInjectedFault
	}
	n, err := f.W.Write(p)
	f.n += n
	return n, err
}
