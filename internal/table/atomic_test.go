package table

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.bin")

	if err := WriteFileAtomic(path, func(f *os.File) error {
		_, err := f.WriteString("v1")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v1" {
		t.Fatalf("content = %q", got)
	}

	// A failing write must leave the previous file untouched and no
	// temp litter behind.
	boom := errors.New("boom")
	if err := WriteFileAtomic(path, func(f *os.File) error {
		f.WriteString("partial garbage")
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v1" {
		t.Fatalf("old content destroyed: %q", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "state.bin" {
		t.Fatalf("temp litter left behind: %v", entries)
	}

	// Overwrite succeeds.
	if err := WriteFileAtomic(path, func(f *os.File) error {
		_, err := f.WriteString("v2")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v2" {
		t.Fatalf("content = %q", got)
	}
}

func TestWriteTempOwnership(t *testing.T) {
	dir := t.TempDir()
	tmp, err := WriteTemp(dir, "x.tmp-*", func(f *os.File) error {
		_, err := f.WriteString("staged")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(tmp); string(got) != "staged" {
		t.Fatalf("staged content = %q", got)
	}
	final := filepath.Join(dir, "x")
	if err := os.Rename(tmp, final); err != nil {
		t.Fatal(err)
	}
	// Failure path removes the temp.
	if _, err := WriteTemp(dir, "y.tmp-*", func(*os.File) error {
		return errors.New("nope")
	}); err == nil {
		t.Fatal("expected error")
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 || entries[0].Name() != "x" {
		t.Fatalf("unexpected dir contents: %v", entries)
	}
}
