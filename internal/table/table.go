package table

import (
	"fmt"
	"math"
	"sort"
)

// Table is a multiset relation over a Schema. Rows need not be keyed: the
// effect tables produced by scripts routinely contain several rows for the
// same unit, which ⊕ later folds together. Row storage is row-major
// [][]float64; keys are stored as exact integers in float64.
//
// Concurrency: a Table has no internal synchronization. Any number of
// goroutines may read a table (rows, cells, derived indexes) as long as
// none mutates it — this is how the parallel engine treats the per-tick
// environment snapshot, which is frozen for the whole decision phase.
// Mutation requires exclusive access.
type Table struct {
	Schema *Schema
	Rows   [][]float64
}

// New returns an empty table with the given schema and capacity hint.
func New(s *Schema, capacity int) *Table {
	return &Table{Schema: s, Rows: make([][]float64, 0, capacity)}
}

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.Rows) }

// Append adds a row. The row must have exactly one value per attribute;
// Append panics otherwise, since a width mismatch is always a programming
// error in a plan operator.
func (t *Table) Append(row []float64) {
	if len(row) != t.Schema.NumAttrs() {
		panic(fmt.Sprintf("table: row width %d != schema width %d", len(row), t.Schema.NumAttrs()))
	}
	t.Rows = append(t.Rows, row)
}

// Clone returns a deep copy of the table (rows are copied).
func (t *Table) Clone() *Table {
	c := New(t.Schema, len(t.Rows))
	for _, r := range t.Rows {
		c.Rows = append(c.Rows, append([]float64(nil), r...))
	}
	return c
}

// Key returns the integer key of row i.
func (t *Table) Key(i int) int64 { return int64(t.Rows[i][t.Schema.KeyCol()]) }

// View returns a read-only window onto rows [lo, hi) of t: the sub-table
// shares t's row storage (no copying), so writes through either alias the
// other. It exists for sharded readers — each worker of the parallel
// engine walks its own contiguous view of the frozen tick snapshot.
// hi < 0 means "to the end".
func (t *Table) View(lo, hi int) *Table {
	if hi < 0 {
		hi = len(t.Rows)
	}
	return &Table{Schema: t.Schema, Rows: t.Rows[lo:hi]}
}

// Union returns the multiset union t ⊎ o. Both tables must share an equal
// schema.
func (t *Table) Union(o *Table) *Table {
	if !t.Schema.Equal(o.Schema) {
		panic("table: union of tables with different schemas")
	}
	u := New(t.Schema, len(t.Rows)+len(o.Rows))
	u.Rows = append(u.Rows, t.Rows...)
	u.Rows = append(u.Rows, o.Rows...)
	return u
}

// SortByKey orders rows by key ascending (stable), used to canonicalize
// tables for comparison and to make iteration deterministic.
func (t *Table) SortByKey() {
	kc := t.Schema.KeyCol()
	sort.SliceStable(t.Rows, func(i, j int) bool { return t.Rows[i][kc] < t.Rows[j][kc] })
}

// constFingerprint hashes the const-column projection of a row, for ⊕
// grouping. Collisions are resolved by full comparison in Combine.
func constFingerprint(row []float64, consts []int) uint64 {
	// FNV-1a over the raw float bits.
	h := uint64(1469598103934665603)
	for _, c := range consts {
		bits := math.Float64bits(row[c])
		for s := 0; s < 64; s += 8 {
			h ^= (bits >> s) & 0xff
			h *= 1099511628211
		}
	}
	return h
}

func constEqual(a, b []float64, consts []int) bool {
	for _, c := range consts {
		if a[c] != b[c] {
			return false
		}
	}
	return true
}

// Combine implements the paper's ⊕R (Section 4.2): group rows by the const
// attributes and fold each effect attribute with its tagged aggregate
// (sum/max/min). The result has at most one row per distinct const tuple;
// group order follows first appearance, so Combine is deterministic.
//
// Combine is associative, commutative and idempotent (paper Eq. 3); the
// property tests in combine_test.go check all three.
func (t *Table) Combine() *Table {
	consts := t.Schema.ConstCols()
	fx := t.Schema.EffectCols()
	out := New(t.Schema, len(t.Rows))
	groups := make(map[uint64][]int, len(t.Rows)) // fingerprint → out-row indexes

	for _, row := range t.Rows {
		fp := constFingerprint(row, consts)
		merged := false
		for _, oi := range groups[fp] {
			if constEqual(out.Rows[oi], row, consts) {
				for _, c := range fx {
					out.Rows[oi][c] = t.Schema.attrs[c].Kind.Fold(out.Rows[oi][c], row[c])
				}
				merged = true
				break
			}
		}
		if !merged {
			out.Rows = append(out.Rows, append([]float64(nil), row...))
			groups[fp] = append(groups[fp], len(out.Rows)-1)
		}
	}
	return out
}

// CombineWith returns ⊕(t ⊎ o), the R ⊕ S shortcut of the paper.
func (t *Table) CombineWith(o *Table) *Table { return t.Union(o).Combine() }

// Keyed reports whether the key attribute is unique across rows, i.e.
// whether t is an R^⊕ in the paper's notation.
func (t *Table) Keyed() bool {
	kc := t.Schema.KeyCol()
	seen := make(map[float64]bool, len(t.Rows))
	for _, r := range t.Rows {
		if seen[r[kc]] {
			return false
		}
		seen[r[kc]] = true
	}
	return true
}

// Lookup returns the first row with the given key, or nil.
func (t *Table) Lookup(key int64) []float64 {
	kc := t.Schema.KeyCol()
	fk := float64(key)
	for _, r := range t.Rows {
		if r[kc] == fk {
			return r
		}
	}
	return nil
}

// EqualContents reports whether two tables contain the same multiset of
// rows (order-insensitive), comparing values exactly. Schemas must match.
func (t *Table) EqualContents(o *Table) bool {
	if !t.Schema.Equal(o.Schema) || len(t.Rows) != len(o.Rows) {
		return false
	}
	a, b := t.Clone(), o.Clone()
	canon := func(x *Table) {
		sort.Slice(x.Rows, func(i, j int) bool { return rowLess(x.Rows[i], x.Rows[j]) })
	}
	canon(a)
	canon(b)
	for i := range a.Rows {
		for c := range a.Rows[i] {
			av, bv := a.Rows[i][c], b.Rows[i][c]
			if av != bv && !(math.IsNaN(av) && math.IsNaN(bv)) {
				return false
			}
		}
	}
	return true
}

// AlmostEqualContents is EqualContents with a per-value absolute tolerance,
// for comparing plans that compute the same aggregates in different
// floating-point orders.
func (t *Table) AlmostEqualContents(o *Table, eps float64) bool {
	if !t.Schema.Equal(o.Schema) || len(t.Rows) != len(o.Rows) {
		return false
	}
	a, b := t.Clone(), o.Clone()
	canon := func(x *Table) {
		sort.Slice(x.Rows, func(i, j int) bool { return rowLess(x.Rows[i], x.Rows[j]) })
	}
	canon(a)
	canon(b)
	for i := range a.Rows {
		for c := range a.Rows[i] {
			av, bv := a.Rows[i][c], b.Rows[i][c]
			if math.IsNaN(av) && math.IsNaN(bv) {
				continue
			}
			if math.IsInf(av, 0) || math.IsInf(bv, 0) {
				if av != bv {
					return false
				}
				continue
			}
			if math.Abs(av-bv) > eps {
				return false
			}
		}
	}
	return true
}

func rowLess(a, b []float64) bool {
	for i := range a {
		ai, bi := canonFloat(a[i]), canonFloat(b[i])
		if ai != bi {
			return ai < bi
		}
	}
	return false
}

// canonFloat maps NaN to a sortable sentinel so rowLess is a total order.
func canonFloat(v float64) float64 {
	if math.IsNaN(v) {
		return math.Inf(-1)
	}
	return v
}
