package table

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

func codecSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Attr{Name: "key", Kind: Const},
		Attr{Name: "posx", Kind: Const},
		Attr{Name: "posy", Kind: Const},
		Attr{Name: "damage", Kind: Sum},
		Attr{Name: "aura", Kind: Max},
		Attr{Name: "shield", Kind: Min},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// The codec must round-trip schemas and rows byte-exactly, including the
// float values a checkpoint actually carries: fold identities (±Inf),
// signed zeros, denormals, and NaN bit patterns.
func TestCodecRoundTrip(t *testing.T) {
	s := codecSchema(t)
	tbl := New(s, 4)
	tbl.Append([]float64{0, 1.5, -2.25, 0, math.Inf(-1), math.Inf(1)})
	tbl.Append([]float64{1, math.Copysign(0, -1), 5e-324, 3, 7, -1})
	tbl.Append([]float64{2, math.Float64frombits(0x7ff8000000000001), 9, 0, 0, 0})

	var buf bytes.Buffer
	w := NewWriter(&buf)
	WriteSchema(w, s)
	WriteRows(w, tbl)
	sum := w.Sum()
	w.U64(sum)
	if w.Err() != nil {
		t.Fatal(w.Err())
	}

	r := NewReader(bytes.NewReader(buf.Bytes()))
	s2, err := ReadSchema(r)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Equal(s) {
		t.Fatalf("schema round trip: got %v want %v", s2, s)
	}
	tbl2, err := ReadRows(r, s2)
	if err != nil {
		t.Fatal(err)
	}
	got := r.Sum()
	if stored := r.U64(); stored != got {
		t.Fatalf("checksum mismatch: stored %x computed %x", stored, got)
	}
	if tbl2.Len() != tbl.Len() {
		t.Fatalf("row count %d != %d", tbl2.Len(), tbl.Len())
	}
	for i := range tbl.Rows {
		for c := range tbl.Rows[i] {
			a, b := tbl.Rows[i][c], tbl2.Rows[i][c]
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("row %d col %d: %x != %x", i, c, math.Float64bits(a), math.Float64bits(b))
			}
		}
	}
}

// Truncating the stream anywhere must produce an error, never a panic or
// a silently short table.
func TestCodecTruncation(t *testing.T) {
	s := codecSchema(t)
	tbl := New(s, 2)
	tbl.Append([]float64{0, 1, 2, 3, 4, 5})
	tbl.Append([]float64{1, 6, 7, 8, 9, 10})
	var buf bytes.Buffer
	w := NewWriter(&buf)
	WriteSchema(w, s)
	WriteRows(w, tbl)
	full := buf.Bytes()

	for cut := 0; cut < len(full); cut += 7 {
		r := NewReader(bytes.NewReader(full[:cut]))
		s2, err := ReadSchema(r)
		if err != nil {
			continue // truncated inside the schema section: correctly rejected
		}
		if _, err := ReadRows(r, s2); err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded without error", cut, len(full))
		}
	}
}

// Hostile counts must be rejected before any large allocation.
func TestCodecLimits(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U32(1 << 30) // absurd attribute count
	r := NewReader(bytes.NewReader(buf.Bytes()))
	if _, err := ReadSchema(r); err == nil {
		t.Fatal("oversized attribute count accepted")
	}

	buf.Reset()
	w = NewWriter(&buf)
	w.U32(1)
	w.U8(uint8(Const))
	w.U32(1 << 30) // absurd name length
	r = NewReader(bytes.NewReader(buf.Bytes()))
	if _, err := ReadSchema(r); err == nil {
		t.Fatal("oversized name length accepted")
	}

	buf.Reset()
	w = NewWriter(&buf)
	w.U32(1)
	w.U8(200) // unknown kind
	w.Str("key")
	r = NewReader(bytes.NewReader(buf.Bytes()))
	if _, err := ReadSchema(r); err == nil {
		t.Fatal("unknown attribute kind accepted")
	}
}

// A decoded schema goes through NewSchema validation, so a stream whose
// schema lacks the key attribute is rejected.
func TestCodecSchemaRevalidated(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U32(1)
	w.U8(uint8(Sum))
	w.Str("damage")
	r := NewReader(bytes.NewReader(buf.Bytes()))
	if _, err := ReadSchema(r); err == nil {
		t.Fatal("keyless schema accepted")
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	if len(p) > f.n {
		p = p[:f.n]
	}
	f.n -= len(p)
	return len(p), nil
}

// The first write error latches and later calls are no-ops.
func TestWriterErrorLatches(t *testing.T) {
	w := NewWriter(&failWriter{n: 3})
	for i := 0; i < 10; i++ {
		w.U64(42)
	}
	if w.Err() == nil {
		t.Fatal("write error not surfaced")
	}
}

// Writer and Reader checksums agree on the same byte stream.
func TestChecksumSymmetry(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U8(1)
	w.U32(2)
	w.U64(3)
	w.I64(-4)
	w.F64(5.5)
	w.Str("hello")
	w.Bytes([]byte{9, 9})
	r := NewReader(bytes.NewReader(buf.Bytes()))
	r.U8()
	r.U32()
	r.U64()
	r.I64()
	r.F64()
	r.Str(16)
	r.Bytes(make([]byte, 2))
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if r.Sum() != w.Sum() {
		t.Fatalf("checksums differ: %x vs %x", r.Sum(), w.Sum())
	}
}
