// Binary row codec: the serialization layer under engine checkpoints.
// Everything is little-endian; floats travel as their IEEE-754 bit
// patterns (math.Float64bits), so a decode→encode round trip is
// byte-identical — the property the checkpoint/restore exactness contract
// leans on (NaN payloads, signed zeros and denormals all survive).
//
// Writer and Reader fold every byte they move into a running FNV-1a
// checksum, so a container format can end with Writer.Sum and verify it
// against Reader.Sum before trusting anything it decoded. Both types
// latch their first error and turn every later call into a no-op, so
// call sites can encode a whole section and check Err once.
package table

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// FNV-1a parameters (shared with constFingerprint above).
const (
	fnvOffset = 1469598103934665603
	fnvPrime  = 1099511628211
)

// Codec limits: a self-describing header whose counts exceed these is
// corrupt (or hostile), and rejecting it early keeps decoding of
// truncated or fuzzed inputs from attempting absurd allocations.
const (
	// MaxAttrs bounds the number of schema attributes a decoder accepts.
	MaxAttrs = 1 << 10
	// MaxNameLen bounds the byte length of one attribute name.
	MaxNameLen = 1 << 10
	// MaxConsts bounds the constant-table section (WriteConsts).
	MaxConsts = 1 << 16
)

// Writer encodes primitives to an io.Writer with a running checksum.
type Writer struct {
	w   io.Writer
	sum uint64
	err error
	buf [8]byte
}

// NewWriter returns a Writer over w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w, sum: fnvOffset} }

// Err returns the first write error, if any.
func (w *Writer) Err() error { return w.err }

// Sum returns the FNV-1a checksum of every byte written so far.
func (w *Writer) Sum() uint64 { return w.sum }

func (w *Writer) write(p []byte) {
	if w.err != nil {
		return
	}
	for _, b := range p {
		w.sum = (w.sum ^ uint64(b)) * fnvPrime
	}
	_, w.err = w.w.Write(p)
}

// Bytes writes raw bytes.
func (w *Writer) Bytes(p []byte) { w.write(p) }

// U8 writes one byte.
func (w *Writer) U8(v uint8) { w.write([]byte{v}) }

// U32 writes a little-endian uint32.
func (w *Writer) U32(v uint32) {
	w.buf[0], w.buf[1], w.buf[2], w.buf[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	w.write(w.buf[:4])
}

// U64 writes a little-endian uint64.
func (w *Writer) U64(v uint64) {
	for i := 0; i < 8; i++ {
		w.buf[i] = byte(v >> (8 * i))
	}
	w.write(w.buf[:8])
}

// I64 writes a little-endian int64 (two's complement).
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// F64 writes the IEEE-754 bit pattern of v.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Str writes a length-prefixed string.
func (w *Writer) Str(s string) {
	w.U32(uint32(len(s)))
	w.write([]byte(s))
}

// Reader decodes primitives from an io.Reader with a running checksum.
// On the first error (including a short read) every later call returns
// the zero value; check Err after a decode section.
type Reader struct {
	r   io.Reader
	sum uint64
	err error
	buf [8]byte
}

// NewReader returns a Reader over r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r, sum: fnvOffset} }

// Err returns the first read error, if any.
func (r *Reader) Err() error { return r.err }

// Sum returns the FNV-1a checksum of every byte read so far.
func (r *Reader) Sum() uint64 { return r.sum }

// Fail records a decode error (for container formats to poison the
// stream on a semantic validation failure).
func (r *Reader) Fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *Reader) read(p []byte) bool {
	if r.err != nil {
		return false
	}
	if _, err := io.ReadFull(r.r, p); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = io.EOF
		}
		r.err = fmt.Errorf("table: truncated input: %w", err)
		return false
	}
	for _, b := range p {
		r.sum = (r.sum ^ uint64(b)) * fnvPrime
	}
	return true
}

// Bytes reads exactly len(p) raw bytes into p.
func (r *Reader) Bytes(p []byte) { r.read(p) }

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	if !r.read(r.buf[:1]) {
		return 0
	}
	return r.buf[0]
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	if !r.read(r.buf[:4]) {
		return 0
	}
	return uint32(r.buf[0]) | uint32(r.buf[1])<<8 | uint32(r.buf[2])<<16 | uint32(r.buf[3])<<24
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	if !r.read(r.buf[:8]) {
		return 0
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(r.buf[i]) << (8 * i)
	}
	return v
}

// I64 reads a little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 reads an IEEE-754 bit pattern.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Str reads a length-prefixed string of at most max bytes.
func (r *Reader) Str(max int) string {
	n := r.U32()
	if r.err != nil {
		return ""
	}
	// Compare in uint64: on 32-bit platforms int(n) can go negative and
	// slip past the limit straight into a panicking make.
	if uint64(n) > uint64(max) {
		r.Fail(fmt.Errorf("table: string length %d exceeds limit %d", n, max))
		return ""
	}
	p := make([]byte, n)
	if !r.read(p) {
		return ""
	}
	return string(p)
}

// ---------------------------------------------------------------------------
// Schema and row sections

// WriteSchema encodes a schema: attribute count, then (kind, name) pairs
// in column order. The encoding is self-describing, so a reader can
// reconstruct — and a container can validate — the exact schema the rows
// were written under.
func WriteSchema(w *Writer, s *Schema) {
	w.U32(uint32(len(s.attrs)))
	for _, a := range s.attrs {
		w.U8(uint8(a.Kind))
		w.Str(a.Name)
	}
}

// ReadSchema decodes a schema section and revalidates it through
// NewSchema, so a decoded schema upholds every invariant a constructed
// one does (unique names, a const "key" attribute).
func ReadSchema(r *Reader) (*Schema, error) {
	n := r.U32()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if n > MaxAttrs {
		err := fmt.Errorf("table: schema with %d attributes exceeds limit %d", n, MaxAttrs)
		r.Fail(err)
		return nil, err
	}
	attrs := make([]Attr, 0, n)
	for i := uint32(0); i < n; i++ {
		kind := Kind(r.U8())
		name := r.Str(MaxNameLen)
		if r.Err() != nil {
			return nil, r.Err()
		}
		if kind > Min {
			err := fmt.Errorf("table: attribute %q has unknown kind %d", name, kind)
			r.Fail(err)
			return nil, err
		}
		attrs = append(attrs, Attr{Name: name, Kind: kind})
	}
	s, err := NewSchema(attrs...)
	if err != nil {
		r.Fail(err)
		return nil, err
	}
	return s, nil
}

// WriteConsts encodes a name→value constant table: entry count, then
// (name, float bits) pairs sorted by name, so equal maps always encode to
// equal bytes (the checkpoint fixed-point property).
func WriteConsts(w *Writer, consts map[string]float64) {
	names := make([]string, 0, len(consts))
	for n := range consts {
		names = append(names, n)
	}
	sort.Strings(names)
	w.U32(uint32(len(names)))
	for _, n := range names {
		w.Str(n)
		w.F64(consts[n])
	}
}

// ReadConsts decodes a constant-table section written by WriteConsts.
func ReadConsts(r *Reader) (map[string]float64, error) {
	n := r.U32()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if n > MaxConsts {
		err := fmt.Errorf("table: constant table with %d entries exceeds limit %d", n, MaxConsts)
		r.Fail(err)
		return nil, err
	}
	consts := make(map[string]float64, n)
	for i := uint32(0); i < n; i++ {
		name := r.Str(MaxNameLen)
		val := r.F64()
		if r.Err() != nil {
			return nil, r.Err()
		}
		consts[name] = val
	}
	return consts, nil
}

// WriteRows encodes a table's rows: row count, then every cell's float
// bits in row-major column order.
func WriteRows(w *Writer, t *Table) {
	w.U32(uint32(len(t.Rows)))
	for _, row := range t.Rows {
		for _, v := range row {
			w.F64(v)
		}
	}
}

// ReadRows decodes a row section into a fresh table over s. Rows are
// read one at a time, so a corrupt count on a truncated input fails with
// an EOF error instead of attempting one giant allocation.
func ReadRows(r *Reader, s *Schema) (*Table, error) {
	n := r.U32()
	if r.Err() != nil {
		return nil, r.Err()
	}
	width := s.NumAttrs()
	// Bound the preallocation in uint32 space (int(n) can be negative on
	// 32-bit platforms); truncated inputs then fail row by row below.
	capHint := 1 << 16
	if n < uint32(capHint) {
		capHint = int(n)
	}
	t := New(s, capHint)
	for i := uint32(0); i < n; i++ {
		row := make([]float64, width)
		for c := range row {
			row[c] = r.F64()
		}
		if r.Err() != nil {
			return nil, r.Err()
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
