// Atomic file-writing helpers shared by the checkpoint writers
// (cmd/battlesim and internal/server). The discipline lives here once:
// write the complete content to a uniquely named temp file in the
// target directory, fsync it so a crash cannot commit a rename ahead of
// the data blocks, and only then rename into place — a reader therefore
// sees either the old complete file or the new complete file, never a
// truncated mixture, and concurrent writers each stage their own temp
// file so the last rename wins whole.
package table

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
)

// WriteTemp stages a fully written, fsynced temporary file in dir and
// returns its path; every failure path removes the temp file and
// returns the error. The caller owns the returned file: rename it into
// place (os.Rename is atomic within a filesystem) or remove it.
// Callers that need a plain atomic single-file write should use
// WriteFileAtomic instead.
func WriteTemp(dir, pattern string, write func(f *os.File) error) (string, error) {
	f, tmp, err := createTemp(dir, pattern)
	if err != nil {
		return "", err
	}
	fail := func(e error) (string, error) {
		f.Close()
		os.Remove(tmp)
		return "", e
	}
	if err := write(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", err
	}
	return tmp, nil
}

// tempSeq distinguishes concurrent createTemp calls within the process.
var tempSeq atomic.Uint64

// createTemp is os.CreateTemp with os.Create's permission semantics:
// CreateTemp hardcodes mode 0600, but checkpoints are shared state
// (backup jobs, cross-user restores), so the file is created with 0666
// filtered by the process umask — exactly what the os.Create-based code
// this package replaced produced. The "*" in pattern is replaced by a
// unique suffix; O_EXCL retries on collision.
func createTemp(dir, pattern string) (*os.File, string, error) {
	for try := 0; try < 10000; try++ {
		suffix := fmt.Sprintf("%d-%d", os.Getpid(), tempSeq.Add(1))
		name := filepath.Join(dir, strings.Replace(pattern, "*", suffix, 1))
		f, err := os.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o666)
		if errors.Is(err, fs.ErrExist) {
			continue
		}
		if err != nil {
			return nil, "", err
		}
		return f, name, nil
	}
	return nil, "", fmt.Errorf("table: cannot create temp file in %s for %s", dir, pattern)
}

// WriteFileAtomic writes path through a staged temp file and an atomic
// rename: on success the file's new content is complete and durable, on
// any failure the previous file (if one existed) is untouched and no
// temp litter remains.
func WriteFileAtomic(path string, write func(f *os.File) error) error {
	tmp, err := WriteTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*", write)
	if err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
