// Package rng implements the deterministic random source required by SGL's
// semantics (paper Section 4.1/4.3).
//
// SGL scripts call Random(i) with an integer seed i. Within a single clock
// tick the same unit asking for the same i must always observe the same
// value — the semantics function ρ : E → N → N^c is fixed for the duration
// of a tick — but values differ between ticks, between units, and between
// seeds. This makes script evaluation a pure function of (E, ρ), which in
// turn is what lets the optimizer reorder and share computation without
// changing game outcomes: the naive and indexed evaluators see exactly the
// same random stream.
//
// The implementation is a counter-based generator: a SplitMix64-style hash
// of (run seed, tick, unit key, i). It is not cryptographic; it only needs
// to be fast, stateless, and well distributed.
package rng

// Source generates the per-tick random values for a whole simulation run.
// The zero value is a valid source with seed 0. Source is stateless and
// safe for concurrent use.
type Source struct {
	seed uint64
}

// New returns a Source for the given run seed. Two runs with the same seed
// and the same initial environment are identical tick-for-tick.
func New(seed uint64) Source { return Source{seed: seed} }

// Seed returns the run seed.
func (s Source) Seed() uint64 { return s.seed }

// mix64 is the SplitMix64 finalizer: a bijective avalanche function on
// 64-bit words.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// At returns the raw 64-bit random word for (tick, unit key, i). It is the
// realization of the paper's ρ(u)(i) for the given tick.
func (s Source) At(tick int64, key int64, i int64) uint64 {
	h := s.seed
	h = mix64(h ^ uint64(tick)*0x9e3779b97f4a7c15)
	h = mix64(h ^ uint64(key)*0xc2b2ae3d27d4eb4f)
	h = mix64(h ^ uint64(i)*0x165667b19e3779f9)
	return h
}

// Uint64 returns a uniformly distributed 64-bit value for (tick, key, i).
func (s Source) Uint64(tick, key, i int64) uint64 { return s.At(tick, key, i) }

// Intn returns a value in [0, n) for (tick, key, i). It panics if n <= 0.
func (s Source) Intn(tick, key, i int64, n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Multiply-shift reduction; bias is negligible for game-sized n.
	hi, _ := mul64(s.At(tick, key, i), uint64(n))
	return int(hi)
}

// Float64 returns a value in [0, 1) for (tick, key, i).
func (s Source) Float64(tick, key, i int64) float64 {
	return float64(s.At(tick, key, i)>>11) / (1 << 53)
}

// Tick binds a Source to a specific clock tick, yielding the function ρ the
// SGL semantics passes to every script during that tick.
func (s Source) Tick(tick int64) TickSource { return TickSource{src: s, tick: tick} }

// TickSource is the per-tick view of a Source: the ρ of the paper's
// semantics definition. It is immutable and safe for concurrent use.
type TickSource struct {
	src  Source
	tick int64
}

// Tick returns the tick this source is bound to.
func (t TickSource) Tick() int64 { return t.tick }

// Random is SGL's Random(i) builtin for the unit with the given key: a
// non-negative value that is stable within the tick. The result is bounded
// to 31 bits so scripts doing arithmetic on it stay within exact float64
// integer range.
func (t TickSource) Random(key, i int64) int64 {
	return int64(t.src.At(t.tick, key, i) >> 33)
}

// Intn returns a value in [0, n) for the unit with the given key.
func (t TickSource) Intn(key, i int64, n int) int { return t.src.Intn(t.tick, key, i, n) }

// Float64 returns a value in [0,1) for the unit with the given key.
func (t TickSource) Float64(key, i int64) float64 { return t.src.Float64(t.tick, key, i) }

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32
	t := aLo * bLo
	lo = t & mask32
	c := t >> 32
	t = aHi*bLo + c
	d := t & mask32
	e := t >> 32
	t = aLo*bHi + d
	lo |= (t & mask32) << 32
	hi = aHi*bHi + e + t>>32
	return hi, lo
}

// Stream is a convenience sequential generator seeded from a Source
// position, used by workload generators (initial unit placement) rather
// than by script semantics. It is not safe for concurrent use.
type Stream struct {
	state uint64
}

// NewStream returns a sequential generator whose stream is determined by
// the source seed and a purpose label index.
func NewStream(s Source, purpose int64) *Stream {
	return &Stream{state: mix64(s.seed ^ uint64(purpose)*0x9e3779b97f4a7c15)}
}

// Substream returns an independent sequential generator deterministically
// derived from the source seed, a purpose label, and a stream index — a
// unit key, a worker shard, or any other partition identifier. Distinct
// (purpose, index) pairs yield statistically independent streams, and the
// derivation does not depend on how many other substreams exist or in what
// order they are created. This is the property the parallel engine relies
// on: a consumer keyed by (tick, unit) draws exactly the same values
// whether one worker or eight are running, so results stay bit-identical
// at any worker count.
func (s Source) Substream(purpose, index int64) *Stream {
	h := mix64(s.seed ^ uint64(purpose)*0x9e3779b97f4a7c15)
	return &Stream{state: mix64(h ^ uint64(index)*0xc2b2ae3d27d4eb4f)}
}

// Next returns the next 64-bit value in the stream.
func (st *Stream) Next() uint64 {
	st.state += 0x9e3779b97f4a7c15
	return mix64(st.state)
}

// Intn returns the next value reduced to [0, n). It panics if n <= 0.
func (st *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	hi, _ := mul64(st.Next(), uint64(n))
	return int(hi)
}

// Float64 returns the next value in [0, 1).
func (st *Stream) Float64() float64 {
	return float64(st.Next()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n), used by the movement
// phase ("this is done in random order").
func (st *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := st.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
