package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStableWithinTick(t *testing.T) {
	s := New(42)
	tk := s.Tick(7)
	for i := int64(0); i < 100; i++ {
		a := tk.Random(13, i)
		b := tk.Random(13, i)
		if a != b {
			t.Fatalf("Random(%d) not stable within tick: %d vs %d", i, a, b)
		}
	}
}

func TestVariesAcrossTicks(t *testing.T) {
	s := New(42)
	same := 0
	for tick := int64(0); tick < 200; tick++ {
		if s.Tick(tick).Random(13, 1) == s.Tick(tick+1).Random(13, 1) {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("values repeated across ticks %d/200 times", same)
	}
}

func TestVariesAcrossUnitsAndSeeds(t *testing.T) {
	s := New(42)
	tk := s.Tick(3)
	seen := map[int64]bool{}
	for key := int64(0); key < 100; key++ {
		seen[tk.Random(key, 1)] = true
	}
	if len(seen) < 98 {
		t.Fatalf("expected ~100 distinct values across units, got %d", len(seen))
	}
	if New(1).Tick(3).Random(5, 1) == New(2).Tick(3).Random(5, 1) {
		t.Fatalf("different run seeds should give different streams")
	}
}

func TestRandomNonNegativeAndBounded(t *testing.T) {
	tk := New(9).Tick(0)
	for i := int64(0); i < 1000; i++ {
		v := tk.Random(i, i)
		if v < 0 || v >= 1<<31 {
			t.Fatalf("Random out of [0, 2^31): %d", v)
		}
	}
}

func TestIntnRange(t *testing.T) {
	s := New(1)
	counts := make([]int, 6)
	for i := int64(0); i < 6000; i++ {
		v := s.Intn(0, i, 0, 6)
		if v < 0 || v >= 6 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for face, c := range counts {
		if c < 800 || c > 1200 {
			t.Errorf("face %d count %d outside [800,1200]; not uniform", face, c)
		}
	}
}

func TestIntnPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n=0")
		}
	}()
	New(1).Intn(0, 0, 0, 0)
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	var sum float64
	const n = 10000
	for i := int64(0); i < n; i++ {
		v := s.Float64(1, i, 2)
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("mean = %v, want ≈0.5", mean)
	}
}

func TestStreamDeterminism(t *testing.T) {
	a := NewStream(New(7), 1)
	b := NewStream(New(7), 1)
	for i := 0; i < 50; i++ {
		if a.Next() != b.Next() {
			t.Fatal("streams with same seed/purpose diverged")
		}
	}
	c := NewStream(New(7), 2)
	if NewStream(New(7), 1).Next() == c.Next() {
		t.Fatal("different purposes should give different streams")
	}
}

func TestStreamPerm(t *testing.T) {
	st := NewStream(New(5), 3)
	p := st.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
	// A permutation of length 100 should essentially never be identity.
	identity := true
	for i, v := range p {
		if i != v {
			identity = false
			break
		}
	}
	if identity {
		t.Fatal("Perm returned the identity permutation; shuffle broken")
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

// Property: mul64 agrees with native 64-bit multiplication on the low word.
func TestMul64LowWordProperty(t *testing.T) {
	f := func(a, b uint64) bool {
		_, lo := mul64(a, b)
		return lo == a*b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: mix64 is injective on a sample (no collisions among 1<<15 inputs).
func TestMixNoEasyCollisions(t *testing.T) {
	seen := make(map[uint64]uint64, 1<<15)
	for i := uint64(0); i < 1<<15; i++ {
		h := mix64(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("collision: mix64(%d) == mix64(%d)", i, prev)
		}
		seen[h] = i
	}
}

func BenchmarkRandom(b *testing.B) {
	tk := New(1).Tick(100)
	for i := 0; i < b.N; i++ {
		_ = tk.Random(int64(i), 1)
	}
}

// Substreams must be (a) reproducible, (b) distinct across purposes and
// indexes, and (c) independent of creation order or count — the property
// the parallel engine relies on for bit-identical results at any worker
// count.
func TestSubstreamDeterminismAndIndependence(t *testing.T) {
	src := New(99)

	a1 := src.Substream(5, 7)
	a2 := src.Substream(5, 7)
	for i := 0; i < 32; i++ {
		if a1.Next() != a2.Next() {
			t.Fatal("same (purpose, index) must reproduce the same stream")
		}
	}

	// Creating unrelated substreams in between must not perturb a stream.
	b1 := src.Substream(5, 8)
	_ = src.Substream(6, 8)
	_ = src.Substream(5, 9)
	b2 := src.Substream(5, 8)
	for i := 0; i < 32; i++ {
		if b1.Next() != b2.Next() {
			t.Fatal("substream depends on creation order")
		}
	}

	// Distinct purposes or indexes give distinct streams.
	c := src.Substream(5, 7)
	d := src.Substream(5, 10)
	e := src.Substream(11, 7)
	same := 0
	for i := 0; i < 64; i++ {
		cv := c.Next()
		if cv == d.Next() {
			same++
		}
		if cv == e.Next() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions across distinct substreams", same)
	}
}

// Substream values should look uniform enough for placement draws.
func TestSubstreamRange(t *testing.T) {
	st := New(3).Substream(2, 4)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := st.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("only %d of 10 buckets hit in 1000 draws", len(seen))
	}
}
