package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"testing"
)

// fakeStdlib builds just enough of the stdlib's type information for
// the analyzers: a "time" package exporting Now/Since/Until/Sleep and a
// "math/rand" package exporting Intn. The analyzers resolve symbols
// through types.Info, so fakes with the right package paths are
// indistinguishable from the real thing — and the test needs no
// export data on disk.
type fakeStdlib struct{}

func (fakeStdlib) Import(path string) (*types.Package, error) {
	pkg := types.NewPackage(path, path[strings.LastIndex(path, "/")+1:])
	scope := pkg.Scope()
	intVar := func() *types.Var {
		return types.NewVar(token.NoPos, pkg, "", types.Typ[types.Int])
	}
	// int -> int stands in for every real signature: the analyzers only
	// look at the symbol's package path and name, never its type.
	mkfunc := func(name string) {
		sig := types.NewSignatureType(nil, nil, nil,
			types.NewTuple(intVar()), types.NewTuple(intVar()), false)
		scope.Insert(types.NewFunc(token.NoPos, pkg, name, sig))
	}
	switch path {
	case "time":
		for _, n := range []string{"Now", "Since", "Until", "Sleep"} {
			mkfunc(n)
		}
	case "math/rand", "math/rand/v2":
		mkfunc("Intn")
	default:
		return nil, fmt.Errorf("fake importer: unknown package %q", path)
	}
	pkg.MarkComplete()
	return pkg, nil
}

// analyze type-checks src as one file and runs the analyzer, returning
// diagnostics as "line: message" strings sorted by position.
func analyze(t *testing.T, a *Analyzer, src string) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "crit.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := &types.Config{Importer: fakeStdlib{}}
	pkg, err := conf.Check("github.com/epicscale/sgl/internal/engine", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	var got []string
	pass := &Pass{
		Analyzer: a, Fset: fset, Files: []*ast.File{f}, Pkg: pkg, Info: info,
		Report: func(d Diagnostic) {
			got = append(got, fmt.Sprintf("%d: %s", fset.Position(d.Pos).Line, d.Message))
		},
	}
	if err := a.Run(pass); err != nil {
		t.Fatal(err)
	}
	sort.Strings(got)
	return got
}

// wantDiags asserts the diagnostics match (line, message-substring)
// pairs exactly — each expected entry must match one diagnostic in
// order, and no extras may remain.
func wantDiags(t *testing.T, got []string, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d diagnostics %v, want %d (%v)", len(got), got, len(want), want)
	}
	for i := range want {
		if !strings.Contains(got[i], want[i]) {
			t.Errorf("diagnostic %d = %q, want it to contain %q", i, got[i], want[i])
		}
	}
}

func TestNoWallClockFiresOnNowSinceUntil(t *testing.T) {
	got := analyze(t, NoWallClock, `package engine

import "time"

func bad() {
	_ = time.Now(0)
	_ = time.Since
	_ = time.Until
	time.Sleep(0) // not a clock READ; sleeping is slow, not nondeterministic
}
`)
	wantDiags(t, got,
		"6: time.Now reads the wall clock",
		"7: time.Since reads the wall clock",
		"8: time.Until reads the wall clock",
	)
}

func TestNoWallClockIgnoresOtherPackagesNamedTime(t *testing.T) {
	// A local identifier named `time` (shadowing) resolves to a non-"time"
	// object, so Now on it must not fire.
	got := analyze(t, NoWallClock, `package engine

type clock struct{}

func (clock) Now() int { return 0 }

func ok() {
	var time clock
	_ = time.Now()
}
`)
	wantDiags(t, got)
}

func TestNoMathRandFiresOnBothVersions(t *testing.T) {
	got := analyze(t, NoMathRand, `package engine

import (
	"math/rand"
	v2 "math/rand/v2"
)

func bad() { _ = rand.Intn(3) + v2.Intn(3) }
`)
	wantDiags(t, got,
		"4: import of math/rand is nondeterministic",
		"5: import of math/rand/v2 is nondeterministic",
	)
}

func TestMapRangeFiresWithoutAnnotation(t *testing.T) {
	got := analyze(t, MapRange, `package engine

func bad(m map[string]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}
`)
	wantDiags(t, got, "5: map iteration order is randomized")
}

func TestMapRangeAcceptsAnnotationWithReason(t *testing.T) {
	got := analyze(t, MapRange, `package engine

func ok(m map[string]int) int {
	s := 0
	//sgl:unordered sum is a commutative fold
	for _, v := range m {
		s += v
	}
	//sgl:unordered same-line form also counts
	for range m { // trailing placement works too
	}
	return s
}
`)
	wantDiags(t, got)
}

func TestMapRangeRejectsAnnotationWithoutReason(t *testing.T) {
	got := analyze(t, MapRange, `package engine

func shrug(m map[string]int) {
	//sgl:unordered
	for range m {
	}
}
`)
	wantDiags(t, got, "5: //sgl:unordered needs a reason")
}

func TestMapRangeIgnoresSlicesAndNamedMapTypes(t *testing.T) {
	// Slices are ordered; named map types are still maps underneath and
	// must fire.
	got := analyze(t, MapRange, `package engine

type registry map[string]int

func mixed(s []int, r registry) {
	for range s {
	}
	for range r {
	}
}
`)
	wantDiags(t, got, "8: map iteration order is randomized")
}

func TestAnalyzersSkipTestFiles(t *testing.T) {
	fset := token.NewFileSet()
	src := `package engine

func helper(m map[string]int) {
	for range m {
	}
}
`
	f, err := parser.ParseFile(fset, "crit_test.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{Types: make(map[ast.Expr]types.TypeAndValue), Defs: make(map[*ast.Ident]types.Object), Uses: make(map[*ast.Ident]types.Object)}
	pkg, err := (&types.Config{Importer: importer.Default()}).Check("github.com/epicscale/sgl/internal/engine", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	pass := &Pass{Analyzer: MapRange, Fset: fset, Files: []*ast.File{f}, Pkg: pkg, Info: info,
		Report: func(d Diagnostic) { t.Errorf("unexpected diagnostic in a _test.go file: %s", d.Message) }}
	if err := MapRange.Run(pass); err != nil {
		t.Fatal(err)
	}
}

func TestCritical(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"github.com/epicscale/sgl/internal/engine", true},
		{"github.com/epicscale/sgl/internal/exec", true},
		{"github.com/epicscale/sgl/internal/algebra", true},
		{"github.com/epicscale/sgl/internal/rng", true},
		{"github.com/epicscale/sgl/internal/index/grid", true},
		{"github.com/epicscale/sgl/internal/index/kdtree", true},
		{"github.com/epicscale/sgl/internal/server", false},
		{"github.com/epicscale/sgl/internal/engineering", false}, // prefix, not subtree
		{"github.com/epicscale/sgl/internal/engine.test", false},
		{"github.com/epicscale/sgl/internal/engine_test", false},
		{"github.com/epicscale/sgl", false},
	}
	for _, c := range cases {
		if got := Critical(c.path); got != c.want {
			t.Errorf("Critical(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}
