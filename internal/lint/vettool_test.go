package lint

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVettoolEndToEnd drives the real protocol: build cmd/sglvet-go,
// synthesize a module that claims this repo's module path (so its
// packages land on determinism-critical import paths), and run
// `go vet -vettool=…` over it. This is the integration pin for the
// hand-rolled unitchecker plumbing — the -V=full handshake, the -flags
// query, the per-package .cfg decode, export-data importing, and the
// exit/diagnostic convention — all of which only `go vet` itself
// exercises.
func TestVettoolEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and shells out to go vet")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go binary not found: %v", err)
	}
	repoRoot, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	tool := filepath.Join(dir, "sglvet-go")
	build := exec.Command(goBin, "build", "-o", tool, "./cmd/sglvet-go")
	build.Dir = repoRoot
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build sglvet-go: %v\n%s", err, out)
	}

	// The module path must be the real one: Critical() gates on the
	// github.com/epicscale/sgl/internal/... import paths.
	mod := filepath.Join(dir, "mod")
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(mod, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module github.com/epicscale/sgl\n\ngo 1.24\n")
	write("internal/engine/bad.go", `package engine

import (
	"math/rand"
	"time"
)

func bad(m map[string]int) int {
	s := rand.Intn(3)
	_ = time.Now()
	for _, v := range m {
		s += v
	}
	//sgl:unordered sum is a commutative fold
	for _, v := range m {
		s += v
	}
	return s
}
`)
	// Same sins in a non-critical package: must vet clean.
	write("internal/server/ok.go", `package server

import "time"

func uptime(start time.Time) time.Duration { return time.Since(start) }
`)
	// And in a _test.go file of a critical package: also clean.
	write("internal/engine/bad_test.go", `package engine

import "time"

func elapsed(start time.Time) time.Duration { return time.Since(start) }
`)

	vet := exec.Command(goBin, "vet", "-vettool="+tool, "./...")
	vet.Dir = mod
	vet.Env = append(os.Environ(), "GOPROXY=off", "GOWORK=off", "GOFLAGS=")
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet passed on a module with determinism violations\n%s", out)
	}
	text := string(out)
	for _, want := range []string{
		"bad.go:4:2: import of math/rand is nondeterministic",
		"bad.go:10:6: time.Now reads the wall clock",
		"bad.go:11:2: map iteration order is randomized",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("go vet output missing %q\n%s", want, text)
		}
	}
	for _, banned := range []string{"ok.go", "bad_test.go", "bad.go:15"} {
		if strings.Contains(text, banned) {
			t.Errorf("go vet flagged %s, which must be exempt\n%s", banned, text)
		}
	}

	// A clean critical package passes — the nonzero exit above was the
	// diagnostics, not a protocol failure.
	if err := os.Remove(filepath.Join(mod, "internal/engine/bad.go")); err != nil {
		t.Fatal(err)
	}
	write("internal/engine/good.go", `package engine

func good(xs []int) int {
	s := 0
	for _, v := range xs {
		s += v
	}
	return s
}
`)
	vet = exec.Command(goBin, "vet", "-vettool="+tool, "./...")
	vet.Dir = mod
	vet.Env = append(os.Environ(), "GOPROXY=off", "GOWORK=off", "GOFLAGS=")
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet failed on a clean module: %v\n%s", err, out)
	}
}
