// Package lint is a minimal, dependency-free reimplementation of the
// go/analysis model (the x/tools module is deliberately not a
// dependency — the repo is stdlib-only) carrying the engine's
// determinism analyzers. The analyzers guard the property every
// exactness contract in this repo rests on: a tick is a pure function
// of (environment, seed, tick counter), so replay, checkpoint
// round-trips, and the serial-vs-parallel differential all compare
// byte-identical runs.
//
// Three things break that purity in Go and are therefore banned in the
// determinism-critical packages (see Critical):
//
//   - wall-clock reads (time.Now / Since / Until) — NoWallClock
//   - the global, OS-seeded math/rand generators — NoMathRand
//   - iterating a map in a way whose order can reach results — MapRange
//
// Map iteration is the only one with a legitimate escape: an iteration
// whose effect is order-independent (a fold into max/sum, a collect-
// then-sort) may be annotated on the line above (or at the end of) the
// range statement:
//
//	//sgl:unordered keys are collected and sorted below
//	for k := range m {
//
// The reason is mandatory; an annotation without one is itself a
// diagnostic. The analyzers run over product code only — _test.go files
// are exempt, since tests measure wall time and fuzz with real entropy
// on purpose.
//
// Command sglvet-go adapts these analyzers to the `go vet -vettool`
// unitchecker protocol so they run across the whole repo in CI.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one analysis: a name (which is also its CLI
// flag in sglvet-go), a doc sentence, and the run function.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass is one analyzer applied to one type-checked package. Report
// delivers diagnostics; the driver decides how to render them.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Report   func(Diagnostic)
}

// A Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Analyzers returns the determinism suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{NoWallClock, NoMathRand, MapRange}
}

// criticalPkgs are the import paths (and, for index, the subtree) whose
// code must be a pure function of (environment, seed, tick): the tick
// executor, the streaming/indexed evaluators, the plan optimizer, the
// deterministic random source, and every spatial index.
var criticalPkgs = []string{
	"github.com/epicscale/sgl/internal/engine",
	"github.com/epicscale/sgl/internal/exec",
	"github.com/epicscale/sgl/internal/algebra",
	"github.com/epicscale/sgl/internal/rng",
	"github.com/epicscale/sgl/internal/index",
}

// Critical reports whether importPath is determinism-critical: one of
// the critical packages or anything under them. Test binaries and
// external test packages (".test" / "_test" suffixed paths) are not —
// tests measure wall time and use entropy on purpose.
func Critical(importPath string) bool {
	if strings.HasSuffix(importPath, ".test") || strings.HasSuffix(importPath, "_test") {
		return false
	}
	for _, p := range criticalPkgs {
		if importPath == p || strings.HasPrefix(importPath, p+"/") {
			return true
		}
	}
	return false
}

// isTestFile reports whether the file at pos is a _test.go file.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// NoWallClock bans wall-clock reads. Any mention of time.Now,
// time.Since, or time.Until — called or passed as a value — makes the
// enclosing computation depend on when it ran, not on the tick.
var NoWallClock = &Analyzer{
	Name: "nowallclock",
	Doc:  "forbid time.Now/Since/Until in determinism-critical packages (derive time from the tick counter)",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			if isTestFile(pass.Fset, f.Pos()) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj := pass.Info.Uses[sel.Sel]
				if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
					return true
				}
				switch obj.Name() {
				case "Now", "Since", "Until":
					pass.Report(Diagnostic{
						Pos:     sel.Pos(),
						Message: "time." + obj.Name() + " reads the wall clock and breaks tick determinism; derive time from the tick counter",
					})
				}
				return true
			})
		}
		return nil
	},
}

// NoMathRand bans math/rand (v1 and v2) entirely: both packages seed
// from the OS by default, and even seeded they are process-global
// mutable state that evaluation order can reach. internal/rng is the
// replacement — counter-based, stateless, a pure function of
// (seed, tick, unit, i).
var NoMathRand = &Analyzer{
	Name: "nomathrand",
	Doc:  "forbid math/rand imports in determinism-critical packages (use internal/rng)",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			if isTestFile(pass.Fset, f.Pos()) {
				continue
			}
			for _, imp := range f.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if path == "math/rand" || path == "math/rand/v2" {
					pass.Report(Diagnostic{
						Pos:     imp.Pos(),
						Message: "import of " + path + " is nondeterministic (OS-seeded, process-global); use internal/rng",
					})
				}
			}
		}
		return nil
	},
}

// MapRange flags `for … range m` over a map unless the statement is
// annotated `//sgl:unordered <reason>` on the preceding line or at the
// end of the range line. Go randomizes map iteration order per run, so
// any unannotated map loop is a latent replay divergence.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc:  "forbid unannotated map iteration in determinism-critical packages (sort keys, or annotate //sgl:unordered <reason>)",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			if isTestFile(pass.Fset, f.Pos()) {
				continue
			}
			notes := unorderedNotes(pass.Fset, f)
			ast.Inspect(f, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := pass.Info.Types[rs.X]
				if !ok || tv.Type == nil {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				line := pass.Fset.Position(rs.For).Line
				reason, annotated := notes[line]
				if !annotated {
					reason, annotated = notes[line-1]
				}
				switch {
				case !annotated:
					pass.Report(Diagnostic{
						Pos:     rs.For,
						Message: "map iteration order is randomized per run; sort the keys, or annotate //sgl:unordered <reason> if order cannot reach results",
					})
				case reason == "":
					pass.Report(Diagnostic{
						Pos:     rs.For,
						Message: "//sgl:unordered needs a reason explaining why iteration order cannot reach results",
					})
				}
				return true
			})
		}
		return nil
	},
}

// unorderedNotes collects the file's //sgl:unordered annotations by the
// line each comment ends on, mapped to the (possibly empty) reason.
func unorderedNotes(fset *token.FileSet, f *ast.File) map[int]string {
	const directive = "//sgl:unordered"
	notes := make(map[int]string)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if c.Text != directive && !strings.HasPrefix(c.Text, directive+" ") {
				continue
			}
			reason := strings.TrimSpace(strings.TrimPrefix(c.Text, directive))
			notes[fset.Position(c.End()).Line] = reason
		}
	}
	return notes
}
