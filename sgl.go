// Package sgl is a scalable game-AI engine built on data-management
// techniques: an implementation of "Scaling Games to Epic Proportions"
// (White, Demers, Koch, Gehrke, Rajagopalan — SIGMOD 2007).
//
// Game AI for large numbers of non-player characters is treated as a query
// processing problem. Per-unit behavior is written in SGL, a small
// functional scripting language; scripts are compiled to a bag-algebra
// plan, optimized with relational rewrite rules, and executed
// set-at-a-time over per-tick index structures (layered range trees with
// fractional cascading, kD-trees, sweep lines), turning an O(n²) tick into
// O(n log n).
//
// # Quick start
//
//	prog, err := sgl.CompileScript(src, schema, consts)   // SGL → checked program
//	eng, err := sgl.NewEngine(prog, mechanics, army, opts) // opts.Mode: Naive or Indexed
//	err = eng.Run(500)                                     // simulate 500 clock ticks
//
// The battle simulation of the paper's Section 3.2 ships ready-made:
//
//	prog, _ := sgl.CompileBattle()
//	army := sgl.GenerateArmy(sgl.ArmySpec{Units: 10000, Density: 0.01, Seed: 1})
//	eng, _ := sgl.NewBattleEngine(prog, army, sgl.Indexed, 1)
//	eng.Run(500)
//
// # Parallel execution
//
// The state-effect pattern makes a tick a set-at-a-time query: scripts
// only read the frozen tick snapshot and emit effects combined with
// commutative/associative folds, so tick execution shards across cores.
// EngineOptions.Workers sets the shard count (0 = all cores, 1 = serial):
//
//	eng, _ := sgl.NewEngine(prog, mech, army, sgl.EngineOptions{
//		Mode: sgl.Indexed, Workers: 0, /* … */
//	})
//
// The determinism contract is strict: for any program, any tick count,
// and any Workers value, the environment is byte-identical to the serial
// run. Three mechanisms make that hold — randomness is counter-based
// (hashed from seed, tick, unit key, and draw index, so values do not
// depend on evaluation order; sequential draws such as respawn placement
// use per-unit substreams), shards are contiguous row ranges whose effect
// buffers merge at a barrier in the serial fold order (plan-node major,
// row minor), and every per-tick index is built once and then probed
// read-only by all workers. Pick Workers = physical cores for throughput;
// there is no accuracy trade-off to weigh, and per-worker effect counts
// are reported in RunStats.EffectsByWorker.
//
// # Incremental index maintenance
//
// The paper rebuilds every per-tick index from scratch; between
// consecutive ticks, though, only the units that moved, fought, or died
// change the attributes the indexes key on. With
// EngineOptions.Incremental the engine snapshots each tick's rows,
// bit-diffs them at tick end into a per-row changed-column mask, and
// patches the previous tick's structures instead of rebuilding: clean
// categorical partitions are reused outright, partitions whose members
// changed only payload attributes (health under a stationary melee line)
// keep their sort order and recompute prefix aggregates in place, and
// everything else rebuilds at partition granularity. A per-definition
// threshold (EngineOptions.IncrementalThreshold, default
// DefaultIncrementalThreshold) falls back to a from-scratch rebuild when
// the relevant churn makes patching pointless.
//
// The determinism argument carries over: every value baked into an index
// at build time is a pure function of the owning row's attributes (the
// analyzer rejects Random there), so bit-unchanged rows contribute
// bit-identical index content and a maintained provider answers every
// probe exactly like a freshly built one. TestIncrementalMatchesRebuild
// proves byte-identical environments across the whole script zoo and the
// battle simulation, per tick, at Workers 1 and 4. On low-churn
// workloads (a garrison watching a front while scouts patrol) ticks run
// ≈2× faster at 10k units; on high-churn workloads the threshold keeps
// the cost within noise of rebuilding. RunStats reports MaintainTicks,
// DirtyRows, and the structure-level reuse/patch/fallback counters.
//
// # Sessions, checkpoints and queries
//
// A production world is not a batch job: it pauses, persists, migrates
// between machines, and answers spectators while it runs. The Session
// API wraps an Engine for exactly that shape of use:
//
//	sess := sgl.NewSession(eng)
//	sess.OnTick(func(tick int64, stats sgl.RunStats) { … })  // per-tick hook
//	err = sess.Step(100)                                     // advance the clock
//	out, err := sess.Query(q, args...)                       // observe, concurrently
//	err = sess.Checkpoint(file)                              // persist the world
//
// Checkpoint writes a versioned, self-describing, checksummed binary
// snapshot — environment rows, tick counter, seed, and the options that
// affect determinism — and Restore reopens it:
//
//	eng, err := sgl.Restore(file, prog, mech)                // default tuning
//	eng, err := sgl.RestoreOpts(file, prog, mech, sgl.EngineOptions{Workers: 8})
//
// The exactness contract extends the Parallel and Incremental ones:
// because all randomness is counter-based on (seed, tick, unit key,
// draw index) and the engine keeps no other cross-tick state, a restored
// engine continues byte-identically to the run that was never
// interrupted — at any Workers or Incremental setting, which are
// deliberately excluded from the format so a world can migrate onto
// different hardware (TestCheckpointResumeBitIdentical proves this over
// the whole script zoo and the battle simulation). Corrupted or
// truncated checkpoints are rejected by checksum before any state is
// built.
//
// Observation queries are the read half: CompileQuery compiles the
// read-only SGL subset — aggregate definitions with filters, categorical
// and range predicates, nearest-neighbour and extremum outputs; no
// actions, no effects, no Random — and an engine evaluates one against
// its live environment:
//
//	q, err := sgl.CompileQuery(`
//	  aggregate Zone(u, x, y, r) :=
//	    count(*) as n, sum(e.health) as hp
//	    over e where e.posx >= x - r and e.posx <= x + r
//	      and e.posy >= y - r and e.posy <= y + r;`, schema, consts)
//	out, err := eng.Query(q, 120, 80, 16)     // world query
//	out, err = eng.QueryAt(q2, 120, 80)       // from an observer position
//	out, err = eng.QueryUnit(q3, unitKey)     // through a live unit's eyes
//
// Queries run on the same machinery as the tick: the first evaluation
// after a tick builds and freezes that query's index structures over the
// current snapshot, and every further evaluation — including concurrent
// ones — probes them through a private fork, so N spectators share one
// index build per tick and each probe costs O(log n) where a scan costs
// O(n). The QueryScan* variants evaluate the same query by scanning
// (the pluggable-evaluator duality of the paper, applied to reads);
// differential tests prove both agree on every output class. Session
// routes queries under a read lock, so any number of reader goroutines
// run safely against Step.
//
// # Interactive sessions: injected commands
//
// Spectators read; players act. Session.Submit injects typed commands —
// spawn a unit, despawn one, set a state column, retune a game constant
// — into a per-tick input buffer that the engine drains at the next tick
// boundary, before the effect query runs:
//
//	err = sess.Submit("player-1",
//	    sgl.Command{Op: sgl.OpSet, Key: 17, Col: "morale", Val: 9},
//	    sgl.Command{Op: sgl.OpDespawn, Key: 41},
//	)
//
// Commands apply in a canonical order — (tick, origin, sequence), the
// stamp Submit assigns — so the resulting world depends only on what was
// submitted during a tick window, never on how the submissions
// interleaved. Commands whose apply-time rules fail (a spawn onto an
// occupied square, a despawn of a dead key) are rejected
// deterministically and counted in RunStats.CommandsRejected.
//
// Every accepted command is also recorded in the session's input
// journal (Session.Journal), which yields exactness contract #5: a run
// replayed from the journal — same program, same initial environment,
// same seed, each entry re-submitted before its tick — is byte-identical
// to the live interactive run, at any Workers or Incremental setting
// (TestReplayMatchesLive proves it over the script zoo and the battle
// simulation).
//
// Checkpoints participate too: format version 2 embeds the script text,
// the constant table, the journal and any still-pending commands, so a
// checkpoint is one self-contained stream. Open reopens it with no
// other artifact:
//
//	sess, err := sgl.Open(file, mech, sgl.EngineOptions{Workers: 8})
//
// Version-1 checkpoints (which predate the embedded script) remain
// readable through Restore, which takes the program explicitly.
//
// # Serving many worlds
//
// One process can host many concurrent worlds: the sgld daemon
// (cmd/sgld) keeps a registry of named Sessions behind an HTTP/JSON
// API — create a world from an SGL script, run its clock at a target
// tick rate on its own goroutine, fan observation queries out to any
// number of spectators (each distinct query source compiles once and
// shares one index build per tick), checkpoint it to disk, and restore
// it into a new session under different tuning, which is live
// migration. Serving is itself covered by an exactness contract: a
// world stepped over HTTP under concurrent spectator load checkpoints
// byte-identically to the same (script, seed, ticks) run standalone.
// Operational counters are exposed on /metrics in Prometheus text
// format, and `sgld -loadgen` measures sustained multi-world serving.
//
// See the examples/ directory for runnable programs (examples/checkpoint
// demonstrates the session lifecycle end to end), cmd/ for the sglc,
// battlesim, benchfig and sgld tools, and docs/ for the architecture
// overview (docs/ARCHITECTURE.md), the SGL language reference
// (docs/LANGUAGE.md), and the CLI guide (docs/CLI.md).
package sgl

import (
	"io"

	"github.com/epicscale/sgl/internal/algebra"
	"github.com/epicscale/sgl/internal/engine"
	"github.com/epicscale/sgl/internal/game"
	"github.com/epicscale/sgl/internal/metrics"
	"github.com/epicscale/sgl/internal/sgl/parser"
	"github.com/epicscale/sgl/internal/sgl/sem"
	"github.com/epicscale/sgl/internal/table"
	"github.com/epicscale/sgl/internal/workload"
)

// Core data-model types (see internal/table for full documentation).
type (
	// Schema is a typed environment schema E(K, A1…Ak) whose attributes
	// carry the combination kinds const/sum/max/min.
	Schema = table.Schema
	// Attr is one schema attribute.
	Attr = table.Attr
	// Kind is an attribute's combination type.
	Kind = table.Kind
	// Table is a multiset relation over a Schema.
	Table = table.Table
	// Program is a parsed and semantically checked SGL script.
	Program = sem.Program
	// Plan is a compiled bag-algebra plan.
	Plan = algebra.Plan
	// Engine is the discrete simulation engine.
	Engine = engine.Engine
	// EngineOptions configure an engine run.
	EngineOptions = engine.Options
	// Mode selects the aggregate query evaluator.
	Mode = engine.Mode
	// Mechanics is the game-rules half of a simulation (the
	// post-processing query and the respawn rule).
	Mechanics = engine.Game
	// ArmySpec describes a generated battle workload.
	ArmySpec = workload.Spec
	// Runner measures the paper's experiments.
	Runner = metrics.Runner
	// RunStats are the engine's cumulative run counters.
	RunStats = engine.RunStats
	// Session is the long-lived facade over an Engine: Step, concurrent
	// Query*, Checkpoint, and a per-tick stats hook.
	Session = engine.Session
	// StatsFunc observes the engine after each tick of a Session.Step.
	StatsFunc = engine.StatsFunc
	// Query is a compiled read-only observation query.
	Query = engine.Query
	// Command is one externally injected world mutation (spawn, despawn,
	// set-column, tune-const), submitted through Session.Submit.
	Command = engine.Command
	// CommandOp selects a Command's mutation.
	CommandOp = engine.CommandOp
	// StampedCommand is a command plus its (tick, origin, sequence)
	// stamp — the canonical application order and the journal entry.
	StampedCommand = engine.StampedCommand
)

// Command operations (see Command).
const (
	// OpSpawn inserts a new unit row (Command.Row, full schema width).
	OpSpawn = engine.OpSpawn
	// OpDespawn removes the unit with Command.Key.
	OpDespawn = engine.OpDespawn
	// OpSet overwrites one state column of the unit with Command.Key.
	OpSet = engine.OpSet
	// OpTune changes a named game constant from the next tick on.
	OpTune = engine.OpTune
)

// CheckpointVersion is the checkpoint format version this build writes.
// Reads accept it and CheckpointVersionV1. See ROADMAP.md for the
// version policy.
const CheckpointVersion = engine.CheckpointVersion

// CheckpointVersionV1 is the previous checkpoint format (no embedded
// script, constants or inputs); still readable through Restore.
const CheckpointVersionV1 = engine.CheckpointVersionV1

// Attribute combination kinds (paper Section 4.2).
const (
	Const = table.Const
	Sum   = table.Sum
	Max   = table.Max
	Min   = table.Min
)

// Evaluator modes: the paper's two pluggable aggregate query evaluators.
const (
	Naive   = engine.Naive
	Indexed = engine.Indexed
)

// DefaultIncrementalThreshold is the per-definition dirty-row fraction
// above which incremental index maintenance falls back to rebuilding
// (EngineOptions.IncrementalThreshold = 0 selects it).
const DefaultIncrementalThreshold = engine.DefaultIncrementalThreshold

// NewSchema builds an environment schema; exactly one Const attribute must
// be named "key".
func NewSchema(attrs ...Attr) (*Schema, error) { return table.NewSchema(attrs...) }

// NewTable returns an empty environment table over the schema.
func NewTable(s *Schema, capacity int) *Table { return table.New(s, capacity) }

// CompileScript parses and type-checks SGL source against a schema and a
// game-constant table.
func CompileScript(src string, schema *Schema, consts map[string]float64) (*Program, error) {
	script, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	return sem.Check(script, schema, consts)
}

// CompilePlan translates a checked program into an optimized bag-algebra
// plan (the engine does this internally; exposed for plan inspection).
func CompilePlan(prog *Program) (*Plan, error) {
	plan, err := algebra.Translate(prog)
	if err != nil {
		return nil, err
	}
	return algebra.Optimize(plan), nil
}

// NewEngine builds a simulation engine over an initial environment.
func NewEngine(prog *Program, mech Mechanics, initial *Table, opts EngineOptions) (*Engine, error) {
	return engine.New(prog, mech, initial, opts)
}

// NewSession wraps an engine in the session facade, adding the locking
// that makes Step, Checkpoint and concurrent Query* calls safe together.
func NewSession(e *Engine) *Session { return engine.NewSession(e) }

// Open reopens a self-contained checkpoint (format version 2 or later)
// as a ready-to-serve Session. The program is rebuilt from the script
// text and constant table embedded in the stream, so no separate prog —
// and no sidecar file — is needed: a checkpoint is the whole world. Of
// tune, only the determinism-neutral knobs (Workers, Incremental,
// IncrementalThreshold) are consulted; the restored session continues
// byte-identically to the run that was never interrupted, including any
// commands that were pending when the checkpoint was written. Version-1
// checkpoints predate the embedded script and are rejected with an
// explanatory error; reopen those with Restore.
func Open(r io.Reader, mech Mechanics, tune EngineOptions) (*Session, error) {
	return engine.Open(r, mech, tune)
}

// Restore reopens a checkpoint written by Engine.Checkpoint (or
// Session.Checkpoint) with default execution tuning. prog must be the
// program the checkpointed engine ran; the embedded schema is verified
// against it. The restored engine continues byte-identically to the
// uninterrupted run.
//
// Deprecated: use Open, which rebuilds the program from the
// self-contained version-2 checkpoint itself. Restore remains the only
// reader for version-1 checkpoints and for deliberately reopening a
// checkpoint under a different (schema-compatible) program.
func Restore(r io.Reader, prog *Program, mech Mechanics) (*Engine, error) {
	return engine.Restore(r, prog, mech, engine.Options{})
}

// RestoreOpts is Restore with execution tuning: of tune, only the
// determinism-neutral knobs — Workers, Incremental, IncrementalThreshold
// — are consulted; everything else (Mode, Seed, world geometry, ablation
// switches) comes from the checkpoint, so resuming under different
// tuning cannot change a single output bit.
//
// Deprecated: use Open (see Restore's deprecation note).
func RestoreOpts(r io.Reader, prog *Program, mech Mechanics, tune EngineOptions) (*Engine, error) {
	return engine.Restore(r, prog, mech, tune)
}

// RestoreSession is Restore composed with NewSession.
//
// Deprecated: use Open, which returns a Session directly.
func RestoreSession(r io.Reader, prog *Program, mech Mechanics, tune EngineOptions) (*Session, error) {
	return engine.RestoreSession(r, prog, mech, tune)
}

// CompileQuery parses and checks a read-only observation query — the
// SGL aggregate-definition subset: filters, categorical and range
// predicates, and aggregate outputs; no actions, no effects, no Random.
// The last aggregate declared is the entry point. Evaluate the result
// with Engine.Query / QueryAt / QueryUnit (or their Session
// counterparts, which add reader locking).
func CompileQuery(src string, schema *Schema, consts map[string]float64) (*Query, error) {
	return engine.CompileQuery(src, schema, consts)
}

// ---------------------------------------------------------------------------
// Battle-simulation convenience layer (the paper's Section 3.2 case study)

// BattleSchema returns the battle simulation's environment schema.
func BattleSchema() *Schema { return game.Schema() }

// BattleConsts returns the battle simulation's game constants.
func BattleConsts() map[string]float64 { return game.Consts() }

// BattleScript is the battle simulation's full SGL source.
const BattleScript = game.Script

// CompileBattle compiles the built-in battle simulation.
func CompileBattle() (*Program, error) { return game.Compile() }

// NewBattleMechanics returns the battle post-processor (d20 rules).
func NewBattleMechanics() Mechanics { return game.NewMechanics() }

// GenerateArmy builds an initial battle environment.
func GenerateArmy(spec ArmySpec) *Table { return workload.Generate(spec) }

// NewBattleEngine wires the battle program, mechanics and army together
// with the standard options (world sized from the army's density spec).
// Use NewBattleEngineOpts to keep control of the execution knobs
// (Workers, Incremental, …) the standard options would otherwise pin.
func NewBattleEngine(prog *Program, spec ArmySpec, mode Mode, seed uint64) (*Engine, error) {
	return NewBattleEngineOpts(prog, spec, EngineOptions{Mode: mode, Seed: seed})
}

// NewBattleEngineOpts builds a battle engine with caller-supplied
// options. The battle-specific fields are defaulted when zero —
// Categoricals to the battle schema's partition attributes, Side to the
// spec's grid, MoveSpeed to 1 — and every other field (Mode, Seed,
// Workers, Incremental, IncrementalThreshold, ablation switches) is
// passed through untouched.
func NewBattleEngineOpts(prog *Program, spec ArmySpec, opts EngineOptions) (*Engine, error) {
	if opts.Categoricals == nil {
		opts.Categoricals = game.Categoricals()
	}
	if opts.Side == 0 {
		opts.Side = spec.Side()
	}
	if opts.MoveSpeed == 0 {
		opts.MoveSpeed = 1
	}
	return engine.New(prog, game.NewMechanics(), workload.Generate(spec), opts)
}

// NewRunner builds the experiment harness over the battle simulation.
func NewRunner() (*Runner, error) { return metrics.NewRunner() }
