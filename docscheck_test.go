package sgl_test

// Documentation gates, run as ordinary tests so CI enforces them:
//
//   - TestGodocCoverage fails if any exported symbol of the public sgl
//     package (or the package itself) lacks a doc comment;
//   - TestMarkdownLinks fails if any markdown file in the repository
//     contains a relative link to a file that does not exist.

import (
	"go/ast"
	"go/doc"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestGodocCoverage enforces the godoc contract on the public surface:
// every exported const, var, type, function, and method of package sgl
// carries a doc comment, and the package has a package-level overview.
func TestGodocCoverage(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["sgl"]
	if !ok {
		t.Fatalf("package sgl not found in .; got %v", pkgs)
	}
	d := doc.New(pkg, "github.com/epicscale/sgl", 0)

	if strings.TrimSpace(d.Doc) == "" {
		t.Error("package sgl has no package-level doc comment")
	}
	undocumented := func(kind, name, docText string) {
		if strings.TrimSpace(docText) == "" {
			t.Errorf("exported %s %s has no doc comment", kind, name)
		}
	}
	values := func(kind string, vs []*doc.Value) {
		for _, v := range vs {
			for _, name := range v.Names {
				if ast.IsExported(name) {
					// A doc comment on the declaration group covers all
					// its names, matching how godoc renders it.
					undocumented(kind, name, v.Doc)
					break
				}
			}
		}
	}
	values("const", d.Consts)
	values("var", d.Vars)
	for _, f := range d.Funcs {
		if ast.IsExported(f.Name) {
			undocumented("func", f.Name, f.Doc)
		}
	}
	for _, typ := range d.Types {
		if ast.IsExported(typ.Name) {
			undocumented("type", typ.Name, typ.Doc)
		}
		values("const", typ.Consts)
		values("var", typ.Vars)
		for _, f := range typ.Funcs {
			if ast.IsExported(f.Name) {
				undocumented("func", f.Name, f.Doc)
			}
		}
		for _, m := range typ.Methods {
			if ast.IsExported(m.Name) {
				undocumented("method", typ.Name+"."+m.Name, m.Doc)
			}
		}
	}
}

// mdLinkRE matches [text](target) markdown links. Images (![…](…), e.g.
// figures embedded by the paper-retrieval tooling) are excluded by
// checking the preceding byte at each match — a regex guard like
// (?:^|[^!]) would consume that byte and skip the second of two
// adjacent links. Reference links are out of scope; inline links are
// what the docs use.
var mdLinkRE = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// TestMarkdownLinks walks every .md file in the repository and verifies
// that each relative link target exists. External URLs are skipped (CI
// should not depend on the network); #fragments are stripped.
func TestMarkdownLinks(t *testing.T) {
	root, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	var mdFiles []string
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "testdata", "sgld-data":
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".md") {
			mdFiles = append(mdFiles, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mdFiles) == 0 {
		t.Fatal("no markdown files found — link checker is miswired")
	}

	checked := 0
	for _, file := range mdFiles {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		content := string(data)
		for _, m := range mdLinkRE.FindAllStringSubmatchIndex(content, -1) {
			if m[0] > 0 && content[m[0]-1] == '!' {
				continue // image link
			}
			target := content[m[2]:m[3]]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			target, _, _ = strings.Cut(target, "#")
			if target == "" {
				continue // pure fragment link within the same file
			}
			resolved := filepath.Join(filepath.Dir(file), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				rel, _ := filepath.Rel(root, file)
				t.Errorf("%s: broken link %q (resolved %s)", rel, target, resolved)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Log("no relative links found (nothing to check)")
	}
}

// TestMdLinkExtraction pins the link-matching edge cases: adjacent
// links are both seen, and image links are skipped via the preceding
// byte (not a consuming regex guard, which would hide the second of
// two adjacent links).
func TestMdLinkExtraction(t *testing.T) {
	content := `[a](one.md)[b](two.md) ![fig](img.jpeg) [c](three.md)`
	var got []string
	for _, m := range mdLinkRE.FindAllStringSubmatchIndex(content, -1) {
		if m[0] > 0 && content[m[0]-1] == '!' {
			continue
		}
		got = append(got, content[m[2]:m[3]])
	}
	want := []string{"one.md", "two.md", "three.md"}
	if len(got) != len(want) {
		t.Fatalf("extracted %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("link %d = %q, want %q", i, got[i], want[i])
		}
	}
}
