package sgl

import (
	"testing"

	"github.com/epicscale/sgl/internal/exec"
)

// FuzzCompileScript asserts the full front end — lexer, parser, semantic
// checker — never panics on arbitrary source against the battle schema,
// and that anything it accepts survives a print → recompile round trip
// (the compiled form of the parser fuzz target's property).
func FuzzCompileScript(f *testing.F) {
	for _, zp := range exec.Zoo {
		f.Add(zp.Src)
	}
	f.Add(BattleScript)
	schema, consts := BattleSchema(), BattleConsts()
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := CompileScript(src, schema, consts)
		if err != nil {
			return
		}
		printed := prog.Script.String()
		if _, err := CompileScript(printed, schema, consts); err != nil {
			t.Fatalf("printed form of a valid program does not recompile: %v\n%s", err, printed)
		}
	})
}
