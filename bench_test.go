// Benchmarks regenerating the paper's evaluation (Section 6), one family
// per table/figure, plus the ablation studies listed in DESIGN.md. The
// full parameter sweeps with paper-style output live in cmd/benchfig;
// these testing.B benches cover the same code paths at benchmark-friendly
// sizes.
//
//	go test -bench=Fig10 -benchmem           # E1: scalability (Figure 10)
//	go test -bench=Density                   # E3: density insensitivity
//	go test -bench=Ablation                  # A1–A5
package sgl

import (
	"fmt"
	"math"
	"testing"

	"github.com/epicscale/sgl/internal/exec"
	"github.com/epicscale/sgl/internal/game"
	"github.com/epicscale/sgl/internal/geom"
	"github.com/epicscale/sgl/internal/index/grid"
	"github.com/epicscale/sgl/internal/index/kdtree"
	"github.com/epicscale/sgl/internal/index/rangetree"
	"github.com/epicscale/sgl/internal/index/segtree"
	"github.com/epicscale/sgl/internal/index/sweepline"
	"github.com/epicscale/sgl/internal/rng"
	"github.com/epicscale/sgl/internal/sgl/interp"
	"github.com/epicscale/sgl/internal/workload"
)

// newBattle builds an engine for benchmarking; b.N ticks are then timed.
func newBattle(b *testing.B, mode Mode, n int, density float64, tweak func(*EngineOptions)) *Engine {
	b.Helper()
	prog, err := CompileBattle()
	if err != nil {
		b.Fatal(err)
	}
	spec := ArmySpec{Units: n, Density: density, Seed: 42, Formation: workload.BattleLines}
	opts := EngineOptions{
		Mode:         mode,
		Categoricals: game.Categoricals(),
		Seed:         42,
		Side:         spec.Side(),
		MoveSpeed:    1,
		// Pin the serial path so the paper-reproduction benchmarks stay
		// comparable to the single-threaded baseline on any machine;
		// BenchmarkTickParallel overrides this per run.
		Workers: 1,
	}
	if tweak != nil {
		tweak(&opts)
	}
	eng, err := NewEngine(prog, NewBattleMechanics(), GenerateArmy(spec), opts)
	if err != nil {
		b.Fatal(err)
	}
	// Let the armies engage so the steady-state workload is combat.
	if err := eng.Run(3); err != nil {
		b.Fatal(err)
	}
	return eng
}

func benchTicks(b *testing.B, mode Mode, n int, density float64) {
	e := newBattle(b, mode, n, density, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Tick(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n)/b.Elapsed().Seconds()*float64(b.N), "unit-ticks/s")
}

// ---------------------------------------------------------------------------
// E1 — Figure 10: time per tick vs number of units at 1% density.

func BenchmarkFig10Naive250(b *testing.B)  { benchTicks(b, Naive, 250, 0.01) }
func BenchmarkFig10Naive500(b *testing.B)  { benchTicks(b, Naive, 500, 0.01) }
func BenchmarkFig10Naive1000(b *testing.B) { benchTicks(b, Naive, 1000, 0.01) }
func BenchmarkFig10Naive2000(b *testing.B) { benchTicks(b, Naive, 2000, 0.01) }

func BenchmarkFig10Indexed250(b *testing.B)   { benchTicks(b, Indexed, 250, 0.01) }
func BenchmarkFig10Indexed500(b *testing.B)   { benchTicks(b, Indexed, 500, 0.01) }
func BenchmarkFig10Indexed1000(b *testing.B)  { benchTicks(b, Indexed, 1000, 0.01) }
func BenchmarkFig10Indexed2000(b *testing.B)  { benchTicks(b, Indexed, 2000, 0.01) }
func BenchmarkFig10Indexed4000(b *testing.B)  { benchTicks(b, Indexed, 4000, 0.01) }
func BenchmarkFig10Indexed8000(b *testing.B)  { benchTicks(b, Indexed, 8000, 0.01) }
func BenchmarkFig10Indexed14000(b *testing.B) { benchTicks(b, Indexed, 14000, 0.01) }

// ---------------------------------------------------------------------------
// E3 — density sensitivity at n = 500 (paper Section 6.1).

func BenchmarkDensityNaive0_5(b *testing.B)   { benchTicks(b, Naive, 500, 0.005) }
func BenchmarkDensityNaive2(b *testing.B)     { benchTicks(b, Naive, 500, 0.02) }
func BenchmarkDensityNaive8(b *testing.B)     { benchTicks(b, Naive, 500, 0.08) }
func BenchmarkDensityIndexed0_5(b *testing.B) { benchTicks(b, Indexed, 500, 0.005) }
func BenchmarkDensityIndexed2(b *testing.B)   { benchTicks(b, Indexed, 500, 0.02) }
func BenchmarkDensityIndexed8(b *testing.B)   { benchTicks(b, Indexed, 500, 0.08) }

// ---------------------------------------------------------------------------
// A1 — aggregate index ablation: scan vs bucket grid vs layered range tree
// (with and without fractional cascading) on the same count-in-rect load.

func ablationPoints(n int, radius float64) ([]rangetree.Point, []float64, []geom.Rect) {
	st := rng.NewStream(rng.New(7), 3)
	side := math.Sqrt(float64(n) / 0.01)
	pts := make([]rangetree.Point, n)
	vals := make([]float64, n)
	for i := range pts {
		pts[i] = rangetree.Point{X: math.Floor(st.Float64() * side), Y: math.Floor(st.Float64() * side)}
		vals[i] = 1
	}
	probes := make([]geom.Rect, 1024)
	for i := range probes {
		c := geom.Point{X: st.Float64() * side, Y: st.Float64() * side}
		probes[i] = geom.RectAround(c, radius)
	}
	return pts, vals, probes
}

// A1 runs each structure at a Warcraft-scale sight (16 squares, few units
// visible) and a d20-scale sight (150 squares, thousands visible): the
// bucket grid wins small windows, the aggregate range tree wins large ones
// — exactly the paper's Section 3.2 argument for why d20 visibility needs
// the new index structures.
var ablationRadii = []struct {
	name   string
	radius float64
}{{"r16", 16}, {"r150", 150}}

var ablationSink float64

func BenchmarkAggIndexAblationScan(b *testing.B) {
	for _, ar := range ablationRadii {
		b.Run(ar.name, func(b *testing.B) {
			pts, vals, probes := ablationPoints(8000, ar.radius)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := probes[i%len(probes)]
				sum := 0.0
				for j, p := range pts {
					if p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY {
						sum += vals[j]
					}
				}
				ablationSink = sum
			}
		})
	}
}

func BenchmarkAggIndexAblationGrid(b *testing.B) {
	for _, ar := range ablationRadii {
		b.Run(ar.name, func(b *testing.B) {
			pts, vals, probes := ablationPoints(8000, ar.radius)
			gp := make([]geom.Point, len(pts))
			for i, p := range pts {
				gp[i] = geom.Point{X: p.X, Y: p.Y}
			}
			g := grid.Build(gp, 1, vals, 8)
			out := []float64{0}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out[0] = 0
				g.Aggregate(probes[i%len(probes)], out)
				ablationSink = out[0]
			}
		})
	}
}

func BenchmarkAggIndexAblationRangeTree(b *testing.B) {
	for _, ar := range ablationRadii {
		b.Run(ar.name, func(b *testing.B) {
			pts, vals, probes := ablationPoints(8000, ar.radius)
			tr := rangetree.Build(pts, 1, vals)
			out := []float64{0}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out[0] = 0
				tr.Aggregate(probes[i%len(probes)], out)
				ablationSink = out[0]
			}
		})
	}
}

func BenchmarkAggIndexAblationNoCascade(b *testing.B) {
	for _, ar := range ablationRadii {
		b.Run(ar.name, func(b *testing.B) {
			pts, vals, probes := ablationPoints(8000, ar.radius)
			tr := rangetree.Build(pts, 1, vals)
			out := []float64{0}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out[0] = 0
				tr.AggregateNoCascade(probes[i%len(probes)], out)
				ablationSink = out[0]
			}
		})
	}
}

// ---------------------------------------------------------------------------
// A2 — MIN via sweepline vs per-probe scan.

func BenchmarkMinAblationSweep(b *testing.B) {
	pts, _, _ := ablationPoints(4000, 16)
	sp := make([]sweepline.Point, len(pts))
	probes := make([]sweepline.Probe, len(pts))
	for i, p := range pts {
		sp[i] = sweepline.Point{X: p.X, Y: p.Y, Value: float64(i % 97), Key: int64(i)}
		probes[i] = sweepline.Probe{X: p.X, Y: p.Y, RX: 16, Exclude: sweepline.NoExclude}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sweepline.Sweep(sp, probes, 16, segtree.Min)
	}
}

func BenchmarkMinAblationScan(b *testing.B) {
	pts, _, _ := ablationPoints(4000, 16)
	vals := make([]float64, len(pts))
	for i := range vals {
		vals[i] = float64(i % 97)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// One full all-probes pass, like one Sweep call.
		for _, q := range pts {
			best := math.Inf(1)
			for j, p := range pts {
				if math.Abs(p.X-q.X) <= 16 && math.Abs(p.Y-q.Y) <= 16 && vals[j] < best {
					best = vals[j]
				}
			}
			ablationSink = best
		}
	}
}

// ---------------------------------------------------------------------------
// A3 — nearest neighbour: kD-tree vs scan.

func BenchmarkNNAblationKDTree(b *testing.B) {
	pts, _, _ := ablationPoints(8000, 16)
	kp := make([]kdtree.Point, len(pts))
	for i, p := range pts {
		kp[i] = kdtree.Point{X: p.X, Y: p.Y, Key: int64(i)}
	}
	tr := kdtree.Build(kp)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := kp[i%len(kp)]
		tr.Nearest(q.X, q.Y, q.Key, math.Inf(1))
	}
}

func BenchmarkNNAblationScan(b *testing.B) {
	pts, _, _ := ablationPoints(8000, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := pts[i%len(pts)]
		best := math.Inf(1)
		for j, p := range pts {
			if j == i%len(pts) {
				continue
			}
			d := (p.X-q.X)*(p.X-q.X) + (p.Y-q.Y)*(p.Y-q.Y)
			if d < best {
				best = d
			}
		}
		ablationSink = best
	}
}

// ---------------------------------------------------------------------------
// A4 — Section 5.4 effect index vs per-performer area application, on a
// healer-heavy army where auras overlap heavily.

func benchHealerArmy(b *testing.B, disableDefer bool) {
	prog, err := CompileBattle()
	if err != nil {
		b.Fatal(err)
	}
	spec := ArmySpec{Units: 3000, Density: 0.04, Seed: 42, Formation: workload.BattleLines, Mix: [3]int{1, 1, 4}}
	eng, err := NewEngine(prog, NewBattleMechanics(), GenerateArmy(spec), EngineOptions{
		Mode:             Indexed,
		Categoricals:     game.Categoricals(),
		Seed:             42,
		Side:             spec.Side(),
		MoveSpeed:        1,
		DisableAreaDefer: disableDefer,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.Run(3); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Tick(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEffectCombineDeferred(b *testing.B) { benchHealerArmy(b, false) }
func BenchmarkEffectCombineDirect(b *testing.B)   { benchHealerArmy(b, true) }

// ---------------------------------------------------------------------------
// A5 — per-tick index construction cost (the paper rebuilds from scratch
// every tick and argues the overhead is low).

func BenchmarkIndexBuild8000(b *testing.B) {
	pts, vals, _ := ablationPoints(8000, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rangetree.Build(pts, 1, vals)
	}
}

// ---------------------------------------------------------------------------
// A6 — set-at-a-time plan execution vs unit-at-a-time interpretation, both
// over the *indexed* provider: isolates the plan executor's contribution
// from the index structures'.

func BenchmarkDecisionSetAtATime(b *testing.B) { benchTicks(b, Indexed, 2000, 0.01) }

func BenchmarkDecisionUnitAtATime(b *testing.B) {
	// Unit-at-a-time with indexed aggregates: interpreter + Indexed
	// provider, measured on the decision phase only.
	prog, err := CompileBattle()
	if err != nil {
		b.Fatal(err)
	}
	spec := ArmySpec{Units: 2000, Density: 0.01, Seed: 42, Formation: workload.BattleLines}
	env := GenerateArmy(spec)
	an := exec.NewAnalyzer(prog, game.Categoricals())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := rng.New(42).Tick(int64(i))
		prov := exec.NewIndexed(an, env, r)
		ev := interp.New(prog, env, prov, r)
		for _, unit := range env.Rows {
			if err := ev.RunUnit(unit, func([]float64) {}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkEngineTickNaiveVsIndexed(b *testing.B) {
	b.Run("naive-1000", func(b *testing.B) { benchTicks(b, Naive, 1000, 0.01) })
	b.Run("indexed-1000", func(b *testing.B) { benchTicks(b, Indexed, 1000, 0.01) })
}

// ---------------------------------------------------------------------------
// P1 — parallel sharded tick execution: throughput vs worker count. The
// determinism tests prove every P produces bit-identical environments, so
// this measures pure speedup. Worker counts above the machine's core count
// measure goroutine overhead, not parallelism — on a multicore box the
// Workers=4 rows should show the ≥ 2× gain over Workers=1 at 10k units.
//
// Each (n, w) point also runs in incremental mode (/incr): the battle is
// a high-churn workload, so the incremental rows mostly measure the
// threshold fallback's overhead plus whatever the per-definition column
// masks still salvage (stationary melee lines leave position-keyed trees
// clean). The dedicated low-churn measurement is BenchmarkTickIncrementalSentry.
//
// Rebuild-mode points at w ∈ {1, 4} additionally run under the legacy
// materializing executor (/mat) so the streaming pipelines' allocation
// and throughput win shows up in the same matrix (compare against the
// matching default row; the allocs/op gap is the per-row []*Row +
// extension-slot churn the streaming path eliminates).
//
//	go test -bench=TickParallel -benchtime=10x

func BenchmarkTickParallel(b *testing.B) {
	for _, n := range []int{2000, 10000} {
		for _, w := range []int{1, 2, 4, 8} {
			for _, inc := range []bool{false, true} {
				mode := "rebuild"
				if inc {
					mode = "incr"
				}
				if inc && w != 1 && w != 4 {
					continue // keep the matrix small: incr at w ∈ {1, 4}
				}
				for _, mat := range []bool{false, true} {
					if mat && (inc || (w != 1 && w != 4)) {
						continue // materializing comparison: rebuild mode, w ∈ {1, 4}
					}
					name := fmt.Sprintf("n%d/w%d/%s", n, w, mode)
					if mat {
						name += "/mat"
					}
					b.Run(name, func(b *testing.B) {
						e := newBattle(b, Indexed, n, 0.01, func(o *EngineOptions) {
							o.Workers = w
							o.Incremental = inc
							o.MaterializeExec = mat
						})
						b.ReportAllocs()
						b.ResetTimer()
						for i := 0; i < b.N; i++ {
							if err := e.Tick(); err != nil {
								b.Fatal(err)
							}
						}
						b.ReportMetric(float64(n)/b.Elapsed().Seconds()*float64(b.N), "unit-ticks/s")
					})
				}
			}
		}
	}
}

// ---------------------------------------------------------------------------
// P2 — incremental index maintenance on a low-churn workload: a garrison
// of knights and archers watches the opposing knight line (three
// aggregate probes per unit per tick over trees partitioned by player and
// unit type) while a small scout detachment — 1 unit in 25 — random-walks
// the map. Rebuild mode reconstructs every tree from all n units each
// tick; incremental mode rebuilds only the scouts' partitions and reuses
// the rest, which is where the ≥ 1.3× tick speedup at 10k units comes
// from (multicore or not — the win is build work removed, not
// parallelism).
//
//	go test -bench=TickIncrementalSentry -benchtime=20x

const sentryScript = `
aggregate WatchEnemyKnights(u) :=
  count(*) as n, sum(e.health) as hp, avg(e.posx) as cx
  over e where e.posx >= u.posx - u.sight and e.posx <= u.posx + u.sight
    and e.posy >= u.posy - u.sight and e.posy <= u.posy + u.sight
    and e.player <> u.player and e.unittype = 0;

aggregate OwnLine(u) :=
  count(*) as n, avg(e.posx) as cx, avg(e.posy) as cy, stddev(e.posx) as sx
  over e where e.player = u.player and e.unittype = 0;

aggregate NearestScout(u) :=
  nearestkey() as key
  over e where e.player = u.player and e.unittype = 2;

action Patrol(u, tx, ty) :=
  on e where e.key = u.key
  set movevect_x = tx - u.posx, movevect_y = ty - u.posy;

function main(u) {
  (let w = WatchEnemyKnights(u))
  (let l = OwnLine(u)) {
    if u.unittype = 2 then
      perform Patrol(u, u.posx + Random(1) % 9 - 4, u.posy + Random(2) % 9 - 4);
    else { if w.n + l.n + NearestScout(u) < -1 then perform Patrol(u, l.cx, l.cy) }
  }
}
`

func newSentry(b *testing.B, n int, workers int, inc bool) *Engine {
	b.Helper()
	prog, err := CompileScript(sentryScript, game.Schema(), game.Consts())
	if err != nil {
		b.Fatal(err)
	}
	spec := ArmySpec{Units: n, Density: 0.01, Seed: 42, Formation: workload.BattleLines, Mix: [3]int{20, 4, 1}}
	eng, err := NewEngine(prog, NewBattleMechanics(), GenerateArmy(spec), EngineOptions{
		Mode:         Indexed,
		Categoricals: game.Categoricals(),
		Seed:         42,
		Side:         spec.Side(),
		MoveSpeed:    1,
		Workers:      workers,
		Incremental:  inc,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.Run(3); err != nil { // let maintenance engage (needs 2 ticks)
		b.Fatal(err)
	}
	return eng
}

func BenchmarkTickIncrementalSentry(b *testing.B) {
	for _, n := range []int{2000, 10000} {
		for _, w := range []int{1, 4} {
			for _, inc := range []bool{false, true} {
				mode := "rebuild"
				if inc {
					mode = "incr"
				}
				b.Run(fmt.Sprintf("n%d/w%d/%s", n, w, mode), func(b *testing.B) {
					e := newSentry(b, n, w, inc)
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if err := e.Tick(); err != nil {
							b.Fatal(err)
						}
					}
					b.ReportMetric(float64(n)/b.Elapsed().Seconds()*float64(b.N), "unit-ticks/s")
					if inc {
						b.ReportMetric(float64(e.Stats.DirtyRows)/float64(e.Stats.Ticks), "dirty-rows/tick")
					}
				})
			}
		}
	}
}

// ---------------------------------------------------------------------------
// S1 — observation-query fan-out: per-query cost of serving spectators
// against the live world. The /indexed rows share one frozen index build
// per tick and probe in O(log n), so per-query cost is sublinear in army
// size; the /scan rows pay the naive O(n) evaluation per query. The
// first indexed iteration of each run amortizes the shared build.
//
//	go test -bench=QueryFanout -benchtime=1000x

func BenchmarkQueryFanout(b *testing.B) {
	src := `
aggregate Zone(u, x, y, r) :=
  count(*) as n, sum(e.health) as hp
  over e where e.posx >= x - r and e.posx <= x + r
    and e.posy >= y - r and e.posy <= y + r;`
	q, err := CompileQuery(src, BattleSchema(), BattleConsts())
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{2000, 10000} {
		e := newBattle(b, Indexed, n, 0.01, nil)
		for _, scan := range []bool{false, true} {
			mode := "indexed"
			if scan {
				mode = "scan"
			}
			b.Run(fmt.Sprintf("n%d/%s", n, mode), func(b *testing.B) {
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					x, y := float64(7*i%97), float64(13*i%89)
					var err error
					if scan {
						_, err = e.QueryScan(q, x, y, 12)
					} else {
						_, err = e.Query(q, x, y, 12)
					}
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
