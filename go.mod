module github.com/epicscale/sgl

go 1.24
