package sgl_test

import (
	"fmt"
	"log"

	"github.com/epicscale/sgl"
)

// Compile a small SGL script against a custom schema and inspect how the
// optimizer will execute it.
func ExampleCompileScript() {
	schema, err := sgl.NewSchema(
		sgl.Attr{Name: "key", Kind: sgl.Const},
		sgl.Attr{Name: "player", Kind: sgl.Const},
		sgl.Attr{Name: "posx", Kind: sgl.Const},
		sgl.Attr{Name: "posy", Kind: sgl.Const},
		sgl.Attr{Name: "morale", Kind: sgl.Const},
		sgl.Attr{Name: "movevect_x", Kind: sgl.Sum},
		sgl.Attr{Name: "movevect_y", Kind: sgl.Sum},
	)
	if err != nil {
		log.Fatal(err)
	}

	const src = `
aggregate EnemiesNear(u) :=
  count(*)
  over e where e.posx >= u.posx - 8 and e.posx <= u.posx + 8
    and e.posy >= u.posy - 8 and e.posy <= u.posy + 8
    and e.player <> u.player;

action Retreat(u) :=
  on e where e.key = u.key
  set movevect_x = 0 - 1, movevect_y = 0;

function main(u) {
  if EnemiesNear(u) > u.morale then perform Retreat(u)
}`
	prog, err := sgl.CompileScript(src, schema, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("aggregates: %d, actions: %d\n", len(prog.Script.Aggs), len(prog.Script.Acts))

	plan, err := sgl.CompilePlan(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan.Explain())
	// Output:
	// aggregates: 1, actions: 1
	// ⊕
	//   act⊕[#1] Retreat()
	//     σ[#2] EnemiesNear(u) > u.morale
	//       E
}

// Run the paper's battle simulation for a handful of ticks and confirm
// both evaluators produce the same world.
func ExampleNewBattleEngine() {
	prog, err := sgl.CompileBattle()
	if err != nil {
		log.Fatal(err)
	}
	spec := sgl.ArmySpec{Units: 60, Density: 0.02, Seed: 3, Formation: 1}

	run := func(mode sgl.Mode) *sgl.Engine {
		eng, err := sgl.NewBattleEngine(prog, spec, mode, 3)
		if err != nil {
			log.Fatal(err)
		}
		if err := eng.Run(8); err != nil {
			log.Fatal(err)
		}
		return eng
	}
	naive := run(sgl.Naive)
	indexed := run(sgl.Indexed)

	fmt.Println("units:", indexed.Env().Len())
	fmt.Println("engines agree:", naive.Env().AlmostEqualContents(indexed.Env(), 1e-9))
	// Output:
	// units: 60
	// engines agree: true
}
