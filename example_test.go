package sgl_test

import (
	"bytes"
	"fmt"
	"log"
	"sync"

	"github.com/epicscale/sgl"
)

// Compile a small SGL script against a custom schema and inspect how the
// optimizer will execute it.
func ExampleCompileScript() {
	schema, err := sgl.NewSchema(
		sgl.Attr{Name: "key", Kind: sgl.Const},
		sgl.Attr{Name: "player", Kind: sgl.Const},
		sgl.Attr{Name: "posx", Kind: sgl.Const},
		sgl.Attr{Name: "posy", Kind: sgl.Const},
		sgl.Attr{Name: "morale", Kind: sgl.Const},
		sgl.Attr{Name: "movevect_x", Kind: sgl.Sum},
		sgl.Attr{Name: "movevect_y", Kind: sgl.Sum},
	)
	if err != nil {
		log.Fatal(err)
	}

	const src = `
aggregate EnemiesNear(u) :=
  count(*)
  over e where e.posx >= u.posx - 8 and e.posx <= u.posx + 8
    and e.posy >= u.posy - 8 and e.posy <= u.posy + 8
    and e.player <> u.player;

action Retreat(u) :=
  on e where e.key = u.key
  set movevect_x = 0 - 1, movevect_y = 0;

function main(u) {
  if EnemiesNear(u) > u.morale then perform Retreat(u)
}`
	prog, err := sgl.CompileScript(src, schema, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("aggregates: %d, actions: %d\n", len(prog.Script.Aggs), len(prog.Script.Acts))

	plan, err := sgl.CompilePlan(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan.Explain())
	// Output:
	// aggregates: 1, actions: 1
	// ⊕
	//   act⊕[#1] Retreat()
	//     σ[#2] EnemiesNear(u) > u.morale
	//       E
}

// Run the paper's battle simulation for a handful of ticks and confirm
// both evaluators produce the same world.
func ExampleNewBattleEngine() {
	prog, err := sgl.CompileBattle()
	if err != nil {
		log.Fatal(err)
	}
	spec := sgl.ArmySpec{Units: 60, Density: 0.02, Seed: 3, Formation: 1}

	run := func(mode sgl.Mode) *sgl.Engine {
		eng, err := sgl.NewBattleEngine(prog, spec, mode, 3)
		if err != nil {
			log.Fatal(err)
		}
		if err := eng.Run(8); err != nil {
			log.Fatal(err)
		}
		return eng
	}
	naive := run(sgl.Naive)
	indexed := run(sgl.Indexed)

	fmt.Println("units:", indexed.Env().Len())
	fmt.Println("engines agree:", naive.Env().AlmostEqualContents(indexed.Env(), 1e-9))
	// Output:
	// units: 60
	// engines agree: true
}

// Serve a live world: a Session advances the clock with Step while any
// number of spectator goroutines observe it concurrently through
// compiled queries — all sharing one index build per tick.
func ExampleNewSession() {
	prog, err := sgl.CompileBattle()
	if err != nil {
		log.Fatal(err)
	}
	eng, err := sgl.NewBattleEngineOpts(prog,
		sgl.ArmySpec{Units: 80, Density: 0.02, Seed: 9, Formation: 1},
		sgl.EngineOptions{Mode: sgl.Indexed, Seed: 9, Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	sess := sgl.NewSession(eng)

	hookFired := 0
	sess.OnTick(func(tick int64, stats sgl.RunStats) { hookFired++ })
	if err := sess.Step(6); err != nil {
		log.Fatal(err)
	}

	// Four spectators ask the same question at once; the session's
	// reader lock makes this safe against a concurrently running clock.
	q, err := sgl.CompileQuery(
		`aggregate Pop(u) := count(*) as n over e;`,
		sgl.BattleSchema(), sgl.BattleConsts())
	if err != nil {
		log.Fatal(err)
	}
	var wg sync.WaitGroup
	alive := make([]float64, 4)
	for i := range alive {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := sess.Query(q)
			if err != nil {
				log.Fatal(err)
			}
			alive[i] = out[0]
		}(i)
	}
	wg.Wait()

	fmt.Println("tick:", sess.Tick(), "hook fired:", hookFired)
	fmt.Println("population seen by all spectators:", alive[0] == 80 && alive[1] == 80 && alive[2] == 80 && alive[3] == 80)
	// Output:
	// tick: 6 hook fired: 6
	// population seen by all spectators: true
}

// Compile an observation query — the read-only SGL subset — and evaluate
// it against a live world in all three probe forms. The indexed path and
// the naive scan must agree; the indexed one costs O(log n) per call.
func ExampleCompileQuery() {
	prog, err := sgl.CompileBattle()
	if err != nil {
		log.Fatal(err)
	}
	eng, err := sgl.NewBattleEngine(prog, sgl.ArmySpec{Units: 60, Density: 0.02, Seed: 4, Formation: 1}, sgl.Indexed, 4)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.Run(3); err != nil {
		log.Fatal(err)
	}

	// A world query reads no unit attributes: evaluate with Query.
	pop, err := sgl.CompileQuery(
		`aggregate Pop(u) := count(*) as n, min(e.health) as low over e;`,
		sgl.BattleSchema(), sgl.BattleConsts())
	if err != nil {
		log.Fatal(err)
	}
	out, err := eng.Query(pop)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("outputs %v: population %d\n", pop.Outputs(), int(out[0]))

	// A positional query reads only u.posx/u.posy: evaluate with QueryAt
	// from any observer position. The scan twin is the oracle.
	zone, err := sgl.CompileQuery(`
aggregate Zone(u, r) :=
  count(*)
  over e where e.posx >= u.posx - r and e.posx <= u.posx + r
    and e.posy >= u.posy - r and e.posy <= u.posy + r;`,
		sgl.BattleSchema(), sgl.BattleConsts())
	if err != nil {
		log.Fatal(err)
	}
	idx, err := eng.QueryAt(zone, 20, 20, 10)
	if err != nil {
		log.Fatal(err)
	}
	scan, err := eng.QueryScanAt(zone, 20, 20, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("indexed agrees with scan:", idx[0] == scan[0])

	// A query reading other unit attributes runs through a live unit's
	// eyes with QueryUnit.
	foes, err := sgl.CompileQuery(
		`aggregate Foes(u) := count(*) over e where e.player <> u.player;`,
		sgl.BattleSchema(), sgl.BattleConsts())
	if err != nil {
		log.Fatal(err)
	}
	seen, err := eng.QueryUnit(foes, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("foes of unit 0:", int(seen[0]))
	// Output:
	// outputs [n low]: population 60
	// indexed agrees with scan: true
	// foes of unit 0: 30
}

// Checkpoint a run mid-flight and restore it — even under different
// execution tuning — and it continues exactly as if never interrupted.
func ExampleRestore() {
	prog, err := sgl.CompileBattle()
	if err != nil {
		log.Fatal(err)
	}
	spec := sgl.ArmySpec{Units: 70, Density: 0.02, Seed: 6, Formation: 1}

	// The uninterrupted run: 15 ticks straight through, serial.
	straight, err := sgl.NewBattleEngine(prog, spec, sgl.Indexed, 6)
	if err != nil {
		log.Fatal(err)
	}
	if err := straight.Run(15); err != nil {
		log.Fatal(err)
	}

	// The interrupted run: 10 ticks, checkpoint, restore with different
	// Workers (checkpoints are migration vehicles — the tuning knobs are
	// not part of the format), then the remaining 5.
	first, err := sgl.NewBattleEngine(prog, spec, sgl.Indexed, 6)
	if err != nil {
		log.Fatal(err)
	}
	if err := first.Run(10); err != nil {
		log.Fatal(err)
	}
	var ck bytes.Buffer
	if err := first.Checkpoint(&ck); err != nil {
		log.Fatal(err)
	}
	resumed, err := sgl.RestoreOpts(&ck, prog, sgl.NewBattleMechanics(), sgl.EngineOptions{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	if err := resumed.Run(5); err != nil {
		log.Fatal(err)
	}

	fmt.Println("resumed at tick:", resumed.TickCount())
	fmt.Println("identical to uninterrupted run:", resumed.Env().EqualContents(straight.Env()))
	// Output:
	// resumed at tick: 15
	// identical to uninterrupted run: true
}

// Inject external commands into a live session, then checkpoint and
// reopen the world from the self-contained stream alone — no program,
// no sidecar. The injected state (the despawned unit, the input
// journal) survives the round trip.
func ExampleOpen() {
	prog, err := sgl.CompileBattle()
	if err != nil {
		log.Fatal(err)
	}
	eng, err := sgl.NewBattleEngine(prog, sgl.ArmySpec{Units: 60, Density: 0.02, Seed: 9, Formation: 1}, sgl.Indexed, 9)
	if err != nil {
		log.Fatal(err)
	}
	sess := sgl.NewSession(eng)
	if err := sess.Step(5); err != nil {
		log.Fatal(err)
	}

	// Players act: commands queue up and apply at the next tick boundary
	// in canonical (tick, origin, sequence) order, so the outcome never
	// depends on network interleaving.
	err = sess.Submit("player-1",
		sgl.Command{Op: sgl.OpSet, Key: 7, Col: "morale", Val: 9},
		sgl.Command{Op: sgl.OpDespawn, Key: 11},
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := sess.Step(5); err != nil {
		log.Fatal(err)
	}

	var ck bytes.Buffer
	if err := sess.Checkpoint(&ck); err != nil {
		log.Fatal(err)
	}
	reopened, err := sgl.Open(&ck, sgl.NewBattleMechanics(), sgl.EngineOptions{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("units after despawn:", reopened.Engine().Env().Len())
	fmt.Println("journal entries:", len(reopened.Journal()))
	// Output:
	// units after despawn: 59
	// journal entries: 2
}
