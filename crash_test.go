package sgl

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/epicscale/sgl/internal/table"
)

// TestCompactCheckpointCrashWindow proves the crash-safety claim for
// compaction: replacing an on-disk checkpoint with a compacted one is
// a window in which the process may die at ANY byte of the new write,
// and an operator who reopens the file must land on either the old
// complete state or the new complete state — never a torn hybrid.
//
// The test snapshots a session at tick 3 (uncompacted, full journal),
// advances to tick 6 and compacts, then attempts the re-checkpoint
// through the package's own staged-temp-then-rename discipline with an
// injected fault at a sweep of byte offsets. After every failed
// attempt the published path must still open as the tick-3 world; only
// a fault-free attempt may advance it to the compacted tick-6 world.
func TestCompactCheckpointCrashWindow(t *testing.T) {
	prog, err := CompileBattle()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewBattleEngineOpts(prog, ArmySpec{Units: 64, Density: 0.01, Seed: 21}, EngineOptions{Mode: Indexed, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(eng)
	mech := NewBattleMechanics()

	step := func(ticks int) {
		t.Helper()
		for i := 0; i < ticks; i++ {
			if err := sess.Submit("player", Command{Op: OpSet, Key: int64(i % 64), Col: "morale", Val: float64(i)}); err != nil {
				t.Fatal(err)
			}
			if err := sess.Step(1); err != nil {
				t.Fatal(err)
			}
		}
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "world.ckpt")

	step(3)
	if err := table.WriteFileAtomic(path, func(f *os.File) error { return sess.Checkpoint(f) }); err != nil {
		t.Fatal(err)
	}
	oldBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	step(3)
	if base := sess.Compact(); base != 6 {
		t.Fatalf("Compact returned base %d, want 6", base)
	}
	var newCkpt bytes.Buffer
	if err := sess.Checkpoint(&newCkpt); err != nil {
		t.Fatal(err)
	}
	newSize := newCkpt.Len()

	// Sweep the crash window: fault the write at the first byte, inside
	// the header, mid-stream, and one byte short of complete.
	for _, limit := range []int{0, 4, 9, newSize / 3, newSize / 2, newSize - 8, newSize - 1} {
		tmp, err := table.WriteTemp(dir, "world.ckpt.tmp-*", func(f *os.File) error {
			return sess.Checkpoint(&table.FaultWriter{W: f, Limit: limit})
		})
		if !errors.Is(err, table.ErrInjectedFault) {
			t.Fatalf("limit %d: WriteTemp error = %v, want ErrInjectedFault", limit, err)
		}
		if tmp != "" {
			if _, statErr := os.Stat(tmp); statErr == nil {
				t.Fatalf("limit %d: failed staging left temp file %s behind", limit, tmp)
			}
		}

		// The published checkpoint is untouched by the failed attempt...
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, oldBytes) {
			t.Fatalf("limit %d: published checkpoint bytes changed under a failed write", limit)
		}
		// ...and still opens as the complete old state.
		old, err := Open(bytes.NewReader(got), mech, EngineOptions{})
		if err != nil {
			t.Fatalf("limit %d: reopening old checkpoint: %v", limit, err)
		}
		if tick := old.Tick(); tick != 3 {
			t.Fatalf("limit %d: old checkpoint opened at tick %d, want 3", limit, tick)
		}
		if base := old.JournalBase(); base != 0 {
			t.Fatalf("limit %d: old checkpoint opened with base %d, want 0", limit, base)
		}
		if n := len(old.Journal()); n != 3 {
			t.Fatalf("limit %d: old checkpoint journal has %d entries, want 3", limit, n)
		}
	}

	// The live session is unharmed by the failed attempts: a fault-free
	// write publishes the new compacted state.
	if err := table.WriteFileAtomic(path, func(f *os.File) error { return sess.Checkpoint(f) }); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := Open(bytes.NewReader(data), mech, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tick := cur.Tick(); tick != 6 {
		t.Fatalf("new checkpoint opened at tick %d, want 6", tick)
	}
	if base := cur.JournalBase(); base != 6 {
		t.Fatalf("new checkpoint opened with base %d, want 6", base)
	}
	if _, err := cur.JournalSince(0); err == nil {
		t.Fatal("genesis replay from the compacted checkpoint should degrade with an error")
	}
	// Both survivors keep simulating.
	for _, s := range []*Session{cur, sess} {
		if err := s.Step(2); err != nil {
			t.Fatal(err)
		}
	}
}
