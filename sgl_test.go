package sgl

import (
	"bytes"
	"strings"
	"testing"

	"github.com/epicscale/sgl/internal/workload"
)

func TestCompileBattleAndPlan(t *testing.T) {
	prog, err := CompileBattle()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := CompilePlan(prog)
	if err != nil {
		t.Fatal(err)
	}
	out := plan.Explain()
	for _, want := range []string{"act⊕", "σ", "π", "E"} {
		if !strings.Contains(out, want) {
			t.Errorf("plan missing %q", want)
		}
	}
}

func TestCompileScriptErrorsSurface(t *testing.T) {
	if _, err := CompileScript("function main(u) { perform Nope(u) }", BattleSchema(), BattleConsts()); err == nil {
		t.Fatal("expected semantic error")
	}
	if _, err := CompileScript("function main(u) {", BattleSchema(), nil); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestNewSchemaThroughFacade(t *testing.T) {
	s, err := NewSchema(
		Attr{Name: "key", Kind: Const},
		Attr{Name: "posx", Kind: Const},
		Attr{Name: "posy", Kind: Const},
		Attr{Name: "damage", Kind: Sum},
	)
	if err != nil {
		t.Fatal(err)
	}
	tbl := NewTable(s, 1)
	tbl.Append([]float64{1, 0, 0, 0})
	if tbl.Len() != 1 {
		t.Fatal("table append failed")
	}
}

func TestBattleEngineEndToEnd(t *testing.T) {
	prog, err := CompileBattle()
	if err != nil {
		t.Fatal(err)
	}
	spec := ArmySpec{Units: 80, Density: 0.02, Seed: 5, Formation: workload.BattleLines}
	eng, err := NewBattleEngine(prog, spec, Indexed, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(15); err != nil {
		t.Fatal(err)
	}
	if eng.Env().Len() != 80 {
		t.Fatalf("population = %d", eng.Env().Len())
	}
	if eng.Stats.Moves == 0 {
		t.Fatal("nothing moved")
	}
}

func TestRunnerThroughFacade(t *testing.T) {
	r, err := NewRunner()
	if err != nil {
		t.Fatal(err)
	}
	r.Warmup = 1
	s, err := r.TickSeconds(Indexed, 60, 0.02, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s <= 0 {
		t.Fatal("non-positive tick time")
	}
}

func TestBattleScriptConstant(t *testing.T) {
	if !strings.Contains(BattleScript, "aggregate CountEnemiesInSight") {
		t.Fatal("BattleScript should expose the case-study source")
	}
}

// NewBattleEngineOpts must honor caller execution knobs that the legacy
// constructor pinned, without changing outcomes.
func TestNewBattleEngineOptsKeepsCallerControl(t *testing.T) {
	prog, err := CompileBattle()
	if err != nil {
		t.Fatal(err)
	}
	spec := ArmySpec{Units: 60, Density: 0.02, Seed: 9, Formation: workload.BattleLines}
	legacy, err := NewBattleEngine(prog, spec, Indexed, 9)
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := NewBattleEngineOpts(prog, spec, EngineOptions{
		Mode: Indexed, Seed: 9,
		Workers:     4,
		Incremental: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tuned.Workers() != 4 {
		t.Fatalf("Workers dropped: %d", tuned.Workers())
	}
	if err := legacy.Run(10); err != nil {
		t.Fatal(err)
	}
	if err := tuned.Run(10); err != nil {
		t.Fatal(err)
	}
	if !legacy.Env().EqualContents(tuned.Env()) {
		t.Fatal("execution knobs changed outcomes")
	}
	if tuned.Stats.MaintainTicks == 0 {
		t.Fatal("Incremental option dropped: maintenance never engaged")
	}
}

// The session lifecycle through the public facade: step, observe,
// checkpoint, restore, and continue identically.
func TestSessionFacadeEndToEnd(t *testing.T) {
	prog, err := CompileBattle()
	if err != nil {
		t.Fatal(err)
	}
	spec := ArmySpec{Units: 80, Density: 0.02, Seed: 5, Formation: workload.BattleLines}
	mk := func() *Session {
		eng, err := NewBattleEngineOpts(prog, spec, EngineOptions{Mode: Indexed, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return NewSession(eng)
	}
	oracle := mk()
	if err := oracle.Step(20); err != nil {
		t.Fatal(err)
	}

	sess := mk()
	hooks := 0
	sess.OnTick(func(int64, RunStats) { hooks++ })
	if err := sess.Step(8); err != nil {
		t.Fatal(err)
	}
	if hooks != 8 {
		t.Fatalf("hook fired %d times", hooks)
	}

	q, err := CompileQuery(`
aggregate Army(u, p) := count(*) as n, sum(e.health) as hp over e where e.player = p;`,
		BattleSchema(), BattleConsts())
	if err != nil {
		t.Fatal(err)
	}
	out, err := sess.Query(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 40 {
		t.Fatalf("player 0 count = %v, want 40 (resurrection keeps the population constant)", out[0])
	}

	var buf bytes.Buffer
	if err := sess.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreSession(&buf, prog, NewBattleMechanics(), EngineOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Step(12); err != nil {
		t.Fatal(err)
	}
	if !oracle.Engine().Env().EqualContents(restored.Engine().Env()) {
		t.Fatal("restored session diverged from uninterrupted run")
	}
}

// Restore through the two public entry points.
func TestRestoreFacade(t *testing.T) {
	prog, err := CompileBattle()
	if err != nil {
		t.Fatal(err)
	}
	spec := ArmySpec{Units: 48, Density: 0.02, Seed: 3, Formation: workload.BattleLines}
	eng, err := NewBattleEngine(prog, spec, Indexed, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(5); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := Restore(bytes.NewReader(data), prog, NewBattleMechanics()); err != nil {
		t.Fatal(err)
	}
	tuned, err := RestoreOpts(bytes.NewReader(data), prog, NewBattleMechanics(), EngineOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tuned.Workers() != 2 {
		t.Fatalf("tuning dropped: workers = %d", tuned.Workers())
	}
	if _, err := Restore(bytes.NewReader(data[:30]), prog, NewBattleMechanics()); err == nil {
		t.Fatal("truncated checkpoint restored")
	}
}
