package sgl

import (
	"strings"
	"testing"

	"github.com/epicscale/sgl/internal/workload"
)

func TestCompileBattleAndPlan(t *testing.T) {
	prog, err := CompileBattle()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := CompilePlan(prog)
	if err != nil {
		t.Fatal(err)
	}
	out := plan.Explain()
	for _, want := range []string{"act⊕", "σ", "π", "E"} {
		if !strings.Contains(out, want) {
			t.Errorf("plan missing %q", want)
		}
	}
}

func TestCompileScriptErrorsSurface(t *testing.T) {
	if _, err := CompileScript("function main(u) { perform Nope(u) }", BattleSchema(), BattleConsts()); err == nil {
		t.Fatal("expected semantic error")
	}
	if _, err := CompileScript("function main(u) {", BattleSchema(), nil); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestNewSchemaThroughFacade(t *testing.T) {
	s, err := NewSchema(
		Attr{Name: "key", Kind: Const},
		Attr{Name: "posx", Kind: Const},
		Attr{Name: "posy", Kind: Const},
		Attr{Name: "damage", Kind: Sum},
	)
	if err != nil {
		t.Fatal(err)
	}
	tbl := NewTable(s, 1)
	tbl.Append([]float64{1, 0, 0, 0})
	if tbl.Len() != 1 {
		t.Fatal("table append failed")
	}
}

func TestBattleEngineEndToEnd(t *testing.T) {
	prog, err := CompileBattle()
	if err != nil {
		t.Fatal(err)
	}
	spec := ArmySpec{Units: 80, Density: 0.02, Seed: 5, Formation: workload.BattleLines}
	eng, err := NewBattleEngine(prog, spec, Indexed, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(15); err != nil {
		t.Fatal(err)
	}
	if eng.Env().Len() != 80 {
		t.Fatalf("population = %d", eng.Env().Len())
	}
	if eng.Stats.Moves == 0 {
		t.Fatal("nothing moved")
	}
}

func TestRunnerThroughFacade(t *testing.T) {
	r, err := NewRunner()
	if err != nil {
		t.Fatal(err)
	}
	r.Warmup = 1
	s, err := r.TickSeconds(Indexed, 60, 0.02, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s <= 0 {
		t.Fatal("non-positive tick time")
	}
}

func TestBattleScriptConstant(t *testing.T) {
	if !strings.Contains(BattleScript, "aggregate CountEnemiesInSight") {
		t.Fatal("BattleScript should expose the case-study source")
	}
}
