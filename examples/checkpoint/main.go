// Checkpoint: the session lifecycle end to end — run a battle as a
// long-lived session, answer observation queries against the live world,
// checkpoint it mid-run, keep going, then restore the checkpoint (as a
// migrated world would) and prove the resumed run reaches exactly the
// state of the run that never stopped.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math"

	"github.com/epicscale/sgl"
)

func main() {
	prog, err := sgl.CompileBattle()
	if err != nil {
		log.Fatal(err)
	}
	spec := sgl.ArmySpec{Units: 300, Density: 0.02, Seed: 42}
	eng, err := sgl.NewBattleEngineOpts(prog, spec, sgl.EngineOptions{
		Mode: sgl.Indexed, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	sess := sgl.NewSession(eng)

	// Observation queries compile once and run against any engine over
	// the same schema. armyQ is a world query; zoneQ probes a window;
	// nearestQ measures from an observer position.
	armyQ, err := sgl.CompileQuery(`
aggregate Army(u, p) :=
  count(*) as n, sum(e.health) as hp, avg(e.health) as mean
  over e where e.player = p;`, sgl.BattleSchema(), sgl.BattleConsts())
	if err != nil {
		log.Fatal(err)
	}
	zoneQ, err := sgl.CompileQuery(`
aggregate Zone(u, x, y, r) :=
  count(*) as n, min(e.health) as weakest
  over e where e.posx >= x - r and e.posx <= x + r
    and e.posy >= y - r and e.posy <= y + r;`, sgl.BattleSchema(), sgl.BattleConsts())
	if err != nil {
		log.Fatal(err)
	}
	nearestQ, err := sgl.CompileQuery(`
aggregate Closest(u) := nearestkey() as key, nearestdist() as dist over e;`,
		sgl.BattleSchema(), sgl.BattleConsts())
	if err != nil {
		log.Fatal(err)
	}

	report := func(when string) {
		for p := 0.0; p <= 1; p++ {
			out, err := sess.Query(armyQ, p)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %s: player %.0f — %3.0f units, %5.0f total hp (mean %.1f)\n",
				when, p, out[0], out[1], out[2])
		}
	}

	fmt.Println("session: 300 units, checkpoint at tick 40, run to tick 100")
	if err := sess.Step(40); err != nil {
		log.Fatal(err)
	}
	report("tick  40")

	center := spec.Side() / 2
	zone, err := sess.Query(zoneQ, center, center, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  tick  40: %2.0f units within 10 of mid-field, weakest at %v hp\n", zone[0], zone[1])
	near, err := sess.QueryAt(nearestQ, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  tick  40: unit #%.0f is nearest the origin (%.1f away)\n", near[0], near[1])

	// Persist the world mid-run. In production this is a file or an
	// object store; the format is self-describing and checksummed.
	var ckpt bytes.Buffer
	if err := sess.Checkpoint(&ckpt); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  checkpoint: %d bytes at tick %d\n", ckpt.Len(), sess.Tick())

	if err := sess.Step(60); err != nil {
		log.Fatal(err)
	}
	report("tick 100")

	// Reopen the tick-40 checkpoint — on 4 workers, as a migration to
	// bigger hardware would — and replay the remaining 60 ticks. The v2
	// format embeds the script, so Open rebuilds the whole session from
	// the stream alone (no prog argument, no sidecar file).
	restored, err := sgl.Open(&ckpt, sgl.NewBattleMechanics(), sgl.EngineOptions{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	if err := restored.Step(60); err != nil {
		log.Fatal(err)
	}

	a, b := sess.Engine().Env(), restored.Engine().Env()
	for i := range a.Rows {
		for c := range a.Rows[i] {
			if math.Float64bits(a.Rows[i][c]) != math.Float64bits(b.Rows[i][c]) {
				log.Fatalf("resumed world diverged at row %d col %d", i, c)
			}
		}
	}
	fmt.Printf("restored at tick 40 on 4 workers, replayed to tick %d: byte-identical to the uninterrupted run\n",
		restored.Tick())
}
