// Modding demonstrates the data-driven story of paper Section 2: behavior
// lives outside the engine, so a "modder" can replace the AI scripts
// without recompiling. The program loads an SGL script from a file (or
// writes a sample mod and loads that), compiles it against the battle
// schema, prints the optimizer's plan, and runs a short battle with the
// modded behavior.
//
// Usage:
//
//	go run ./examples/modding [my_mod.sgl]
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/epicscale/sgl"
)

// sampleMod makes every unit a berserker: no flight, no formations — charge
// the weakest visible enemy. Compare its plan with `sglc -builtin`.
const sampleMod = `
aggregate WeakestEnemyInReach(u) :=
  argmin(e.health) as key
  over e where e.posx >= u.posx - u.range and e.posx <= u.posx + u.range
    and e.posy >= u.posy - u.range and e.posy <= u.posy + u.range
    and e.player <> u.player;

aggregate NearestEnemy(u) :=
  nearestkey() as key, nearestx() as x, nearesty() as y
  over e where e.player <> u.player;

action Strike(u, target_key, roll, dmgroll) :=
  on e where e.key = target_key
    and (roll = 20 or (roll <> 1 and roll + u.attack >= e.ac))
  set damage = max(1, dmgroll - e.dr);

action MarkAttack(u) :=
  on e where e.key = u.key set weaponused = 1;

action Charge(u, tx, ty) :=
  on e where e.key = u.key
  set movevect_x = tx - u.posx, movevect_y = ty - u.posy;

function main(u) {
  (let w = WeakestEnemyInReach(u)) {
    if w >= 0 and u.cooldown = 0 then {
      (let roll = Random(1) % 20 + 1)
      (let dmgroll = Random(2) % u.dmgsides + 1 + u.dmgbonus) {
        perform Strike(u, w, roll, dmgroll);
        perform MarkAttack(u)
      }
    };
    else (let foe = NearestEnemy(u)) {
      if foe.key >= 0 then perform Charge(u, foe.x, foe.y)
    }
  }
}
`

func main() {
	var path string
	if len(os.Args) > 1 {
		path = os.Args[1]
	} else {
		path = filepath.Join(os.TempDir(), "berserker_mod.sgl")
		if err := os.WriteFile(path, []byte(sampleMod), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("no mod given; wrote the sample berserker mod to %s\n\n", path)
	}

	src, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := sgl.CompileScript(string(src), sgl.BattleSchema(), sgl.BattleConsts())
	if err != nil {
		log.Fatalf("mod rejected: %v", err)
	}
	plan, err := sgl.CompilePlan(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("modded AI accepted; optimized query plan:")
	fmt.Print(plan.Explain())

	spec := sgl.ArmySpec{Units: 600, Density: 0.02, Seed: 11, Formation: 1}
	eng, err := sgl.NewEngine(prog, sgl.NewBattleMechanics(), sgl.GenerateArmy(spec), sgl.EngineOptions{
		Mode:         sgl.Indexed,
		Categoricals: []string{"player", "unittype"},
		Seed:         11,
		Side:         spec.Side(),
		MoveSpeed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.Run(120); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n120 ticks of berserker combat: %d deaths, %d effects applied\n",
		eng.Stats.Deaths, eng.Stats.EffectsApplied)
}
