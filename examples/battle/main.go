// Battle runs the paper's full Section 3.2 case study — knights, archers
// and healers with d20 mechanics and coordination behaviors — and prints a
// running commentary plus the engine's index-work counters.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/epicscale/sgl"
)

func main() {
	prog, err := sgl.CompileBattle()
	if err != nil {
		log.Fatal(err)
	}
	spec := sgl.ArmySpec{Units: 2000, Density: 0.01, Seed: 2026, Formation: 1 /* battle lines */}
	eng, err := sgl.NewBattleEngine(prog, spec, sgl.Indexed, 2026)
	if err != nil {
		log.Fatal(err)
	}

	schema := sgl.BattleSchema()
	fmt.Printf("battle of %d units on a %.0f×%.0f field (1%% density)\n", spec.Units, spec.Side(), spec.Side())

	start := time.Now()
	const ticks = 200
	for done := 0; done < ticks; done += 25 {
		if err := eng.Run(25); err != nil {
			log.Fatal(err)
		}
		var hp [2]float64
		var count [2]int
		for _, row := range eng.Env().Rows {
			p := int(row[schema.MustCol("player")])
			hp[p] += row[schema.MustCol("health")]
			count[p]++
		}
		fmt.Printf("tick %4d: player0 %4d units (%6.0f hp)  player1 %4d units (%6.0f hp)  deaths so far %d\n",
			done+25, count[0], hp[0], count[1], hp[1], eng.Stats.Deaths)
	}
	elapsed := time.Since(start)

	fmt.Printf("\n%d ticks in %.2fs — %.1f ticks/second with per-unit scripted AI for %d units\n",
		ticks, elapsed.Seconds(), ticks/elapsed.Seconds(), spec.Units)
	s := eng.Stats.IndexStats
	fmt.Printf("index work: %d builds, %d range-tree probes, %d kd probes, %d sweeps, %d scan fallbacks\n",
		s.IndexBuilds, s.TreeProbes, s.KDProbes, s.Sweeps, s.ScanProbes)
	fmt.Printf("effects applied: %d, movement attempts: %d (%d blocked by collision)\n",
		eng.Stats.EffectsApplied, eng.Stats.Moves, eng.Stats.MovesBlocked)
}
