// Skeletons reproduces the paper's motivating example from Section 3:
// "Suppose the game designer wants a certain type of unit to run in fear
// from a large number of marching skeletons … if all the units can see the
// skeletons, then each unit performs an O(n) count aggregate, for a total
// time of O(n²)."
//
// Here an army of villagers individually counts the skeletons each of them
// can see and flees — morale varies per unit, so the herd frays at the
// edges instead of moving uniformly (the individuality the paper argues
// centralized AI cannot express). The same scripts run under both engines
// and the program reports the measured time ratio.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"github.com/epicscale/sgl"
	"github.com/epicscale/sgl/internal/geom"
	"github.com/epicscale/sgl/internal/rng"
)

const script = `
aggregate SkeletonsVisible(u) :=
  count(*)
  over e where e.posx >= u.posx - u.sight and e.posx <= u.posx + u.sight
    and e.posy >= u.posy - u.sight and e.posy <= u.posy + u.sight
    and e.player <> u.player;

aggregate SkeletonCentroid(u) :=
  avg(e.posx) as x, avg(e.posy) as y
  over e where e.posx >= u.posx - u.sight and e.posx <= u.posx + u.sight
    and e.posy >= u.posy - u.sight and e.posy <= u.posy + u.sight
    and e.player <> u.player;

action Flee(u, fx, fy) :=
  on e where e.key = u.key
  set movevect_x = u.posx - fx, movevect_y = u.posy - fy;

action March(u) :=
  on e where e.key = u.key
  set movevect_x = 0 - 1, movevect_y = 0;

function main(u) {
  if u.player = 1 then perform March(u);   # skeletons march west
  else (let seen = SkeletonsVisible(u)) {
    if seen > u.morale then perform Flee(u, SkeletonCentroid(u))
  }
}
`

type mechanics struct{ schema *sgl.Schema }

func (m *mechanics) ApplyEffects(row []float64, effects []float64) (geom.Vec, bool) {
	get := func(name string) float64 {
		v := effects[m.schema.MustCol(name)]
		if math.IsInf(v, 0) {
			return 0
		}
		return v
	}
	return geom.Vec{X: get("movevect_x"), Y: get("movevect_y")}, true
}

func (m *mechanics) Respawn(row []float64, st *rng.Stream) {}

func main() {
	schema, err := sgl.NewSchema(
		sgl.Attr{Name: "key", Kind: sgl.Const},
		sgl.Attr{Name: "player", Kind: sgl.Const}, // 0 = villager, 1 = skeleton
		sgl.Attr{Name: "posx", Kind: sgl.Const},
		sgl.Attr{Name: "posy", Kind: sgl.Const},
		sgl.Attr{Name: "sight", Kind: sgl.Const},
		sgl.Attr{Name: "morale", Kind: sgl.Const},
		sgl.Attr{Name: "movevect_x", Kind: sgl.Sum},
		sgl.Attr{Name: "movevect_y", Kind: sgl.Sum},
	)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := sgl.CompileScript(script, schema, nil)
	if err != nil {
		log.Fatal(err)
	}

	const n = 3000
	const side = 550.0
	build := func() *sgl.Table {
		st := rng.NewStream(rng.New(9), 1)
		world := sgl.NewTable(schema, n)
		for i := 0; i < n; i++ {
			player := 0.0
			x := float64(st.Intn(side / 2))
			if i%2 == 1 {
				player = 1
				x = side/2 + float64(st.Intn(side/2))
			}
			world.Append([]float64{
				float64(i), player, x, float64(st.Intn(side)),
				40,                       // d20-scale sight
				float64(3 + st.Intn(12)), // per-unit morale
				0, 0,
			})
		}
		return world
	}

	measure := func(mode sgl.Mode) (time.Duration, *sgl.Engine) {
		eng, err := sgl.NewEngine(prog, &mechanics{schema: schema}, build(), sgl.EngineOptions{
			Mode: mode, Categoricals: []string{"player"}, Seed: 9, Side: side, MoveSpeed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		if err := eng.Run(10); err != nil {
			log.Fatal(err)
		}
		return time.Since(start), eng
	}

	naiveTime, naiveEng := measure(sgl.Naive)
	indexedTime, indexedEng := measure(sgl.Indexed)
	if !naiveEng.Env().AlmostEqualContents(indexedEng.Env(), 1e-9) {
		log.Fatal("engines disagree")
	}

	fleeing := 0
	for _, row := range indexedEng.Env().Rows {
		if row[schema.MustCol("player")] == 0 && row[schema.MustCol("posx")] < side/2-10 {
			fleeing++
		}
	}
	fmt.Printf("%d units, 10 ticks of skeleton panic (both engines agree)\n", n)
	fmt.Printf("  naive   engine: %8.3fs  (each unit scans all %d units per aggregate)\n", naiveTime.Seconds(), n)
	fmt.Printf("  indexed engine: %8.3fs  (shared range trees over the skeleton horde)\n", indexedTime.Seconds())
	fmt.Printf("  speedup: %.1f×\n", naiveTime.Seconds()/indexedTime.Seconds())
	fmt.Printf("  villagers driven deep into the west: %d (morale varies per unit — no uniform herd)\n", fleeing)
}
