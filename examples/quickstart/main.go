// Quickstart: define a tiny game schema, write an SGL script, and run a
// few clock ticks under both engines, checking they agree.
//
// The "game": wolves chase the nearest sheep and bite it when adjacent;
// sheep flee from the centroid of nearby wolves.
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/epicscale/sgl"
	"github.com/epicscale/sgl/internal/geom"
	"github.com/epicscale/sgl/internal/rng"
)

const script = `
aggregate NearestSheep(u) :=
  nearestkey() as key, nearestdist() as dist,
  nearestx() as x, nearesty() as y
  over e where e.player <> u.player;

aggregate WolvesNear(u) :=
  count(*) as n, avg(e.posx) as cx, avg(e.posy) as cy
  over e where e.posx >= u.posx - 8 and e.posx <= u.posx + 8
    and e.posy >= u.posy - 8 and e.posy <= u.posy + 8
    and e.player <> u.player;

action Bite(u, target_key) :=
  on e where e.key = target_key
  set damage = 2;

action MoveToward(u, tx, ty) :=
  on e where e.key = u.key
  set movevect_x = tx - u.posx, movevect_y = ty - u.posy;

action MoveAway(u, fx, fy) :=
  on e where e.key = u.key
  set movevect_x = u.posx - fx, movevect_y = u.posy - fy;

function wolf(u) {
  (let prey = NearestSheep(u)) {
    if prey.key >= 0 then {
      if prey.dist <= 1.5 then perform Bite(u, prey.key);
      else perform MoveToward(u, prey.x, prey.y)
    }
  }
}

function sheep(u) {
  (let danger = WolvesNear(u)) {
    if danger.n > 0 then perform MoveAway(u, danger.cx, danger.cy)
  }
}

function main(u) {
  if u.player = 0 then perform wolf(u);
  else perform sheep(u)
}
`

// mechanics applies damage and reports death; no cooldowns, no healing.
type mechanics struct{ schema *sgl.Schema }

func (m *mechanics) ApplyEffects(row []float64, effects []float64) (geom.Vec, bool) {
	health := m.schema.MustCol("health")
	dmg := effects[m.schema.MustCol("damage")]
	if !math.IsInf(dmg, 0) {
		row[health] -= dmg
	}
	mvx := effects[m.schema.MustCol("movevect_x")]
	mvy := effects[m.schema.MustCol("movevect_y")]
	var mv geom.Vec
	if !math.IsInf(mvx, 0) {
		mv.X = mvx
	}
	if !math.IsInf(mvy, 0) {
		mv.Y = mvy
	}
	return mv, row[health] > 0
}

func (m *mechanics) Respawn(row []float64, st *rng.Stream) {
	row[m.schema.MustCol("health")] = 6
}

func main() {
	schema, err := sgl.NewSchema(
		sgl.Attr{Name: "key", Kind: sgl.Const},
		sgl.Attr{Name: "player", Kind: sgl.Const}, // 0 = wolf, 1 = sheep
		sgl.Attr{Name: "posx", Kind: sgl.Const},
		sgl.Attr{Name: "posy", Kind: sgl.Const},
		sgl.Attr{Name: "health", Kind: sgl.Const},
		sgl.Attr{Name: "movevect_x", Kind: sgl.Sum},
		sgl.Attr{Name: "movevect_y", Kind: sgl.Sum},
		sgl.Attr{Name: "damage", Kind: sgl.Sum},
	)
	if err != nil {
		log.Fatal(err)
	}

	prog, err := sgl.CompileScript(script, schema, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Two wolves and six sheep on a 24×24 meadow.
	newWorld := func() *sgl.Table {
		world := sgl.NewTable(schema, 8)
		add := func(key int64, player, x, y float64) {
			world.Append([]float64{float64(key), player, x, y, 6, 0, 0, 0})
		}
		add(0, 0, 0, 0)
		add(1, 0, 23, 23)
		for i := int64(2); i < 8; i++ {
			add(i, 1, float64(5+3*i), float64(20-2*i))
		}
		return world
	}

	run := func(mode sgl.Mode) *sgl.Engine {
		eng, err := sgl.NewEngine(prog, &mechanics{schema: schema}, newWorld(), sgl.EngineOptions{
			Mode: mode, Seed: 7, Side: 24, MoveSpeed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := eng.Run(20); err != nil {
			log.Fatal(err)
		}
		return eng
	}

	naive := run(sgl.Naive)
	indexed := run(sgl.Indexed)
	if !naive.Env().AlmostEqualContents(indexed.Env(), 1e-9) {
		log.Fatal("engines disagree!")
	}

	fmt.Println("wolves and sheep after 20 ticks (both engines agree):")
	env := indexed.Env()
	env.SortByKey()
	for _, row := range env.Rows {
		kind := "wolf "
		if row[schema.MustCol("player")] == 1 {
			kind = "sheep"
		}
		fmt.Printf("  %s #%d at (%4.1f, %4.1f) health %v\n",
			kind, int(row[schema.KeyCol()]),
			row[schema.MustCol("posx")], row[schema.MustCol("posy")],
			row[schema.MustCol("health")])
	}
	fmt.Printf("bites landed: %d deaths across the run\n", indexed.Stats.Deaths)
}
