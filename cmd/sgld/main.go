// Command sgld is the multi-session simulation daemon: it hosts many
// named concurrent worlds behind an HTTP/JSON API, each with its own
// clock goroutine and per-session execution tuning, and exposes
// Prometheus-style counters on /metrics.
//
// Serve mode (the default):
//
//	sgld -addr :7070 -data ./sgld-data
//
//	curl -X POST localhost:7070/v1/sessions -d '{"name":"alpha","units":2000,"tickrate":10}'
//	curl localhost:7070/v1/sessions
//	curl -X POST localhost:7070/v1/sessions/alpha/query \
//	     -d '{"src":"aggregate N(u) := count(*) over e;","args":[]}'
//	curl -X POST localhost:7070/v1/sessions/alpha/checkpoint -d '{}'
//	curl -X POST localhost:7070/v1/sessions \
//	     -d '{"name":"beta","restore":"alpha.ckpt","workers":4}'
//
// Replica mode follows a writer daemon: each listed session is
// bootstrapped from the writer's checkpoint, kept current by replaying
// its streamed journal, and served locally for reads (queries, SSE
// subscriptions, checkpoints — mutations refuse with 409). If the
// writer compacts past the replica's cursor, the replica re-bootstraps
// by itself:
//
//	sgld -addr :7071 -follow http://writer:7070 -follow-sessions alpha,beta
//
// Load-generator mode drives a fleet of worlds with spectator query
// fan-out — and, with -actors, command-injecting actors exercising the
// sharded admission path, and with -subscribers, SSE push subscribers
// holding …/subscribe streams — and prints per-session tick-rate and
// latency tables (plus pushed-vs-poll-equivalent volume for
// subscribers). -compact turns on end-of-tick journal compaction in
// every world, the right pairing for a long actor-heavy run.
// With -base it targets a running daemon; without, it spins up an
// in-process server first, so one command proves the serving layer end
// to end:
//
//	sgld -loadgen -worlds 8 -spectators 4 -actors 2 -duration 10s
//
// See docs/CLI.md for the full flag reference and docs/ARCHITECTURE.md
// for where the server sits in the system.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/epicscale/sgl/internal/cluster"
	"github.com/epicscale/sgl/internal/engine"
	"github.com/epicscale/sgl/internal/metrics"
	"github.com/epicscale/sgl/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", ":7070", "HTTP listen address")
		dataDir = flag.String("data", "sgld-data", "checkpoint directory (empty disables file checkpoints)")

		follow     = flag.String("follow", "", "writer base URL to replicate from (replica mode; serves reads only)")
		followSess = flag.String("follow-sessions", "", "comma-separated writer sessions to replicate (required with -follow)")
		followWait = flag.Duration("follow-wait", 5*time.Second, "replica journal long-poll park time")
		followWork = flag.Int("follow-workers", 1, "replica engine workers per followed session")
		followIncr = flag.Bool("follow-incremental", false, "replica incremental index maintenance per followed session")

		loadgen    = flag.Bool("loadgen", false, "run the load generator instead of serving")
		base       = flag.String("base", "", "loadgen target base URL (empty = spin up an in-process server)")
		worlds     = flag.Int("worlds", 8, "loadgen: concurrent worlds")
		units      = flag.Int("units", 1000, "loadgen: units per world")
		density    = flag.Float64("density", 0.01, "loadgen: army density")
		seed       = flag.Uint64("seed", 42, "loadgen: base seed (world i runs seed+i)")
		tickrate   = flag.Float64("tickrate", 10, "loadgen: clock target per world in ticks/s (0 = uncapped)")
		spectators = flag.Int("spectators", 4, "loadgen: concurrent spectators per world")
		actors     = flag.Int("actors", 0, "loadgen: concurrent command-injecting actors per world")
		subs       = flag.Int("subscribers", 0, "loadgen: push subscribers (SSE) per world")
		duration   = flag.Duration("duration", 10*time.Second, "loadgen: measurement window")
		workers    = flag.Int("workers", 1, "loadgen: engine workers per world")
		incr       = flag.Bool("incremental", false, "loadgen: incremental index maintenance per world")
		compact    = flag.Bool("compact", false, "loadgen: end-of-tick journal compaction per world (keeps checkpoints flat under actor traffic)")
	)
	flag.Parse()

	if err := run(runConfig{
		addr: *addr, dataDir: *dataDir,
		follow: *follow, followSessions: *followSess, followWait: *followWait,
		followTune: engine.Options{Workers: *followWork, Incremental: *followIncr},
		loadgen:    *loadgen, base: *base,
		lg: server.LoadGenConfig{
			Worlds: *worlds, Units: *units, Density: *density, Seed: *seed,
			TickRate: *tickrate, Spectators: *spectators, Actors: *actors, Subscribers: *subs, Duration: *duration,
			Workers: *workers, Incremental: *incr, Compact: *compact,
		},
	}, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sgld:", err)
		os.Exit(1)
	}
}

// runConfig is the parsed command line.
type runConfig struct {
	addr    string
	dataDir string

	// Replica mode: follow is the writer's base URL, followSessions the
	// comma-separated sessions to replicate. The daemon then serves those
	// worlds read-only (queries, subscriptions, checkpoints), refusing
	// mutation with 409.
	follow         string
	followSessions string
	followWait     time.Duration
	followTune     engine.Options

	loadgen bool
	base    string
	lg      server.LoadGenConfig
}

// run drives one sgld invocation (main minus flag parsing and exit, so
// tests can call it).
func run(cfg runConfig, out io.Writer) error {
	if cfg.dataDir != "" {
		if err := os.MkdirAll(cfg.dataDir, 0o755); err != nil {
			return err
		}
	}
	if cfg.loadgen {
		return runLoadGen(cfg, out)
	}
	return serve(cfg, out)
}

// serve runs the daemon until SIGINT/SIGTERM, then stops every clock.
// With -follow it first bootstraps a replica world per followed session
// (failing fast on a bad writer URL or session name) and keeps each one
// replaying the writer's journal until shutdown.
func serve(cfg runConfig, out io.Writer) error {
	reg := server.NewRegistry()
	srv := server.New(reg, cfg.dataDir)
	httpSrv := &http.Server{Addr: cfg.addr, Handler: srv}

	var followers []*cluster.Follower
	if cfg.follow != "" {
		if cfg.followSessions == "" {
			return fmt.Errorf("-follow needs -follow-sessions")
		}
		for _, name := range strings.Split(cfg.followSessions, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			f, err := cluster.StartFollower(cluster.FollowerConfig{
				Writer: strings.TrimSuffix(cfg.follow, "/"), Session: name,
				Registry: reg, Tune: cfg.followTune, Wait: cfg.followWait,
			})
			if err != nil {
				for _, started := range followers {
					started.Stop()
				}
				return err
			}
			followers = append(followers, f)
			fmt.Fprintf(out, "sgld: replicating %s from %s (at tick %d)\n", name, cfg.follow, f.World().Session().Tick())
		}
		defer func() {
			for _, f := range followers {
				f.Stop()
			}
		}()
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "sgld: serving on http://%s (data dir %q)\n", ln.Addr(), cfg.dataDir)

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		fmt.Fprintf(out, "sgld: %v, shutting down\n", s)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return err
	}
	reg.Close()
	return nil
}

// runLoadGen drives the load generator, spinning up an in-process server
// on a loopback port when no -base was given, and prints the per-world
// table plus the server's own /metrics counters.
func runLoadGen(cfg runConfig, out io.Writer) error {
	baseURL := cfg.base
	var reg *server.Registry
	if baseURL == "" {
		reg = server.NewRegistry()
		srv := server.New(reg, cfg.dataDir)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		httpSrv := &http.Server{Handler: srv}
		go httpSrv.Serve(ln)
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			httpSrv.Shutdown(ctx)
			reg.Close()
		}()
		baseURL = "http://" + ln.Addr().String()
		fmt.Fprintf(out, "sgld: in-process server on %s\n", baseURL)
	}

	lg := cfg.lg
	lg.BaseURL = baseURL
	fmt.Fprintf(out, "sgld: loadgen — %d worlds × %d units, %d spectators + %d actors + %d subscribers/world, %.0f ticks/s target, %s window\n",
		lg.Worlds, lg.Units, lg.Spectators, lg.Actors, lg.Subscribers, lg.TickRate, lg.Duration)
	rows, err := server.LoadGen(lg)
	if err != nil {
		return err
	}
	fmt.Fprintln(out)
	metrics.WriteLoadGen(out, rows)
	if reg != nil {
		fmt.Fprintln(out, "\nserver counters:")
		reg.Metrics.WritePrometheus(out)
	}
	return nil
}
