package main

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/epicscale/sgl/internal/server"
)

// TestLoadGenSmoke runs the exact code path `sgld -loadgen` users hit:
// in-process server, a small fleet of worlds, spectator fan-out, table
// + counters printed at the end.
func TestLoadGenSmoke(t *testing.T) {
	var out strings.Builder
	err := run(runConfig{
		dataDir: filepath.Join(t.TempDir(), "data"),
		loadgen: true,
		lg: server.LoadGenConfig{
			Worlds: 2, Units: 64, Density: 0.02, Seed: 1,
			TickRate: 20, Spectators: 1, Duration: 600 * time.Millisecond,
		},
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"in-process server",
		"loadgen-0", "loadgen-1", "TOTAL",
		"sgld_sessions_created_total 2",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}
