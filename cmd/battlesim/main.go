// Command battlesim runs the paper's battle simulation (Section 3.2) from
// the command line under either engine, as a session that can be
// checkpointed and resumed.
//
// Usage:
//
//	battlesim -units 2000 -ticks 500 -mode indexed -density 0.01 -seed 42
//	battlesim -units 10000 -workers 4              # sharded ticks, identical results
//	battlesim -ticks 500 -checkpoint world.ckpt -checkevery 100
//	battlesim -ticks 500 -resume world.ckpt        # continue where it stopped
//
// A resumed run produces exactly the environment and counters the
// uninterrupted run would have: checkpoints carry the tick counter, the
// seed, the determinism-relevant options, and the cumulative
// deaths/moves counters.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/epicscale/sgl/internal/engine"
	"github.com/epicscale/sgl/internal/game"
	"github.com/epicscale/sgl/internal/table"
	"github.com/epicscale/sgl/internal/workload"
)

// config is the parsed command line.
type config struct {
	units        int
	ticks        int
	mode         engine.Mode
	density      float64
	seed         uint64
	formation    workload.Formation
	report       int
	workers      int
	incremental  bool
	incThreshold float64
	checkpoint   string // write a checkpoint here every checkEvery ticks (and at the end)
	checkEvery   int
	resume       string // start from this checkpoint instead of a fresh army
}

func main() {
	var cfg config
	var modeName, formation string
	flag.IntVar(&cfg.units, "units", 1000, "number of units")
	flag.IntVar(&cfg.ticks, "ticks", 100, "clock ticks to simulate")
	flag.StringVar(&modeName, "mode", "indexed", "naive or indexed")
	flag.Float64Var(&cfg.density, "density", 0.01, "fraction of grid squares occupied")
	flag.Uint64Var(&cfg.seed, "seed", 42, "run seed")
	flag.StringVar(&formation, "formation", "lines", "lines or scattered")
	flag.IntVar(&cfg.report, "report", 25, "progress report interval in ticks (0 = none)")
	flag.IntVar(&cfg.workers, "workers", 0, "tick executor shards (0 = all cores, 1 = serial; results are identical)")
	flag.BoolVar(&cfg.incremental, "incremental", false, "patch per-tick indexes from the previous tick instead of rebuilding (identical results)")
	flag.Float64Var(&cfg.incThreshold, "incthreshold", 0, "dirty-fraction rebuild fallback (0 = default)")
	flag.StringVar(&cfg.checkpoint, "checkpoint", "", "write a checkpoint to this path every -checkevery ticks and at the end")
	flag.IntVar(&cfg.checkEvery, "checkevery", 100, "checkpoint interval in ticks (with -checkpoint)")
	flag.StringVar(&cfg.resume, "resume", "", "resume from a checkpoint written by -checkpoint (ignores -units/-density/-seed/-mode/-formation)")
	flag.Parse()

	switch modeName {
	case "indexed":
		cfg.mode = engine.Indexed
	case "naive":
		cfg.mode = engine.Naive
	default:
		fmt.Fprintln(os.Stderr, "battlesim: -mode must be naive or indexed")
		os.Exit(2)
	}
	cfg.formation = workload.BattleLines
	if formation == "scattered" {
		cfg.formation = workload.Scattered
	}
	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "battlesim:", err)
		os.Exit(1)
	}
}

// run drives one battlesim invocation. It is main minus flag parsing and
// process exit, so the checkpoint/resume smoke test can exercise the
// exact code path users do.
func run(cfg config, out io.Writer) error {
	prog, err := game.Compile()
	if err != nil {
		return err
	}
	tune := engine.Options{
		Workers:              cfg.workers,
		Incremental:          cfg.incremental,
		IncrementalThreshold: cfg.incThreshold,
	}

	var sess *engine.Session
	if cfg.resume != "" {
		f, err := os.Open(cfg.resume)
		if err != nil {
			return err
		}
		sess, err = engine.RestoreSession(f, prog, game.NewMechanics(), tune)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "battlesim: resumed %d units at tick %d from %s\n",
			sess.Engine().Env().Len(), sess.Tick(), cfg.resume)
	} else {
		spec := workload.Spec{Units: cfg.units, Density: cfg.density, Seed: cfg.seed, Formation: cfg.formation}
		opts := tune
		opts.Mode = cfg.mode
		opts.Categoricals = game.Categoricals()
		opts.Seed = cfg.seed
		opts.Side = spec.Side()
		opts.MoveSpeed = 1
		e, err := engine.New(prog, game.NewMechanics(), workload.Generate(spec), opts)
		if err != nil {
			return err
		}
		sess = engine.NewSession(e)
		fmt.Fprintf(out, "battlesim: %d units, %.1f%% density (grid %.0f×%.0f), %s engine, %d ticks, %d workers\n",
			cfg.units, cfg.density*100, spec.Side(), spec.Side(), cfg.mode, cfg.ticks, e.Workers())
	}

	start := time.Now()
	startTick := sess.Tick()
	if cfg.report > 0 {
		endTick := startTick + int64(cfg.ticks)
		sess.OnTick(func(tick int64, stats engine.RunStats) {
			// Report on the interval and always on the final tick, so the
			// run's end-state counters appear even when -ticks is not a
			// multiple of -report.
			if (tick-startTick)%int64(cfg.report) != 0 && tick != endTick {
				return
			}
			elapsed := time.Since(start)
			fmt.Fprintf(out, "tick %5d  %8.2fs elapsed  %8.1f ticks/s  deaths=%d moves=%d blocked=%d\n",
				tick, elapsed.Seconds(), float64(tick-startTick)/elapsed.Seconds(),
				stats.Deaths, stats.Moves, stats.MovesBlocked)
		})
	}

	writeCheckpoint := func() error {
		if cfg.checkpoint == "" {
			return nil
		}
		// Staged write + fsync + rename-into-place (table.WriteFileAtomic):
		// a crash mid-write never corrupts the last good checkpoint.
		if err := table.WriteFileAtomic(cfg.checkpoint, func(f *os.File) error {
			return sess.Checkpoint(f)
		}); err != nil {
			return err
		}
		fmt.Fprintf(out, "checkpoint: tick %d → %s\n", sess.Tick(), cfg.checkpoint)
		return nil
	}

	for done := 0; done < cfg.ticks; {
		step := cfg.ticks - done
		if cfg.checkpoint != "" && cfg.checkEvery > 0 && step > cfg.checkEvery {
			step = cfg.checkEvery
		}
		if err := sess.Step(step); err != nil {
			return err
		}
		done += step
		if done < cfg.ticks {
			if err := writeCheckpoint(); err != nil {
				return err
			}
		}
	}
	if err := writeCheckpoint(); err != nil {
		return err
	}

	total := time.Since(start)
	stats := sess.Stats()
	fmt.Fprintf(out, "\ntotal: %.2fs for %d ticks (%.4fs/tick, %.1f ticks/s)\n",
		total.Seconds(), cfg.ticks, total.Seconds()/float64(cfg.ticks), float64(cfg.ticks)/total.Seconds())
	if s := stats.IndexStats; s.IndexBuilds > 0 {
		fmt.Fprintf(out, "index work: %d builds, %d tree probes, %d kd probes, %d sweeps, %d scan fallbacks\n",
			s.IndexBuilds, s.TreeProbes, s.KDProbes, s.Sweeps, s.ScanProbes)
		if cfg.incremental {
			fmt.Fprintf(out, "maintenance: %d/%d ticks maintained, %.1f dirty rows/tick, %d reuses, %d patches, %d fallbacks\n",
				stats.MaintainTicks, stats.Ticks,
				float64(stats.DirtyRows)/float64(max(1, stats.MaintainTicks)),
				s.IndexReuses, s.IndexPatches, s.MaintainFallbacks)
		}
	}
	return nil
}
