// Command battlesim runs the paper's battle simulation (Section 3.2) from
// the command line under either engine.
//
// Usage:
//
//	battlesim -units 2000 -ticks 500 -mode indexed -density 0.01 -seed 42
//	battlesim -units 10000 -workers 4   # sharded ticks, identical results
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/epicscale/sgl/internal/engine"
	"github.com/epicscale/sgl/internal/game"
	"github.com/epicscale/sgl/internal/workload"
)

func main() {
	units := flag.Int("units", 1000, "number of units")
	ticks := flag.Int("ticks", 100, "clock ticks to simulate")
	modeName := flag.String("mode", "indexed", "naive or indexed")
	density := flag.Float64("density", 0.01, "fraction of grid squares occupied")
	seed := flag.Uint64("seed", 42, "run seed")
	formation := flag.String("formation", "lines", "lines or scattered")
	report := flag.Int("report", 25, "progress report interval in ticks (0 = none)")
	workers := flag.Int("workers", 0, "tick executor shards (0 = all cores, 1 = serial; results are identical)")
	incremental := flag.Bool("incremental", false, "patch per-tick indexes from the previous tick instead of rebuilding (identical results)")
	incThreshold := flag.Float64("incthreshold", 0, "dirty-fraction rebuild fallback (0 = default)")
	flag.Parse()

	mode := engine.Indexed
	switch *modeName {
	case "indexed":
	case "naive":
		mode = engine.Naive
	default:
		fmt.Fprintln(os.Stderr, "battlesim: -mode must be naive or indexed")
		os.Exit(2)
	}
	form := workload.BattleLines
	if *formation == "scattered" {
		form = workload.Scattered
	}

	prog, err := game.Compile()
	if err != nil {
		fatal(err)
	}
	spec := workload.Spec{Units: *units, Density: *density, Seed: *seed, Formation: form}
	e, err := engine.New(prog, game.NewMechanics(), workload.Generate(spec), engine.Options{
		Mode:                 mode,
		Categoricals:         game.Categoricals(),
		Seed:                 *seed,
		Side:                 spec.Side(),
		MoveSpeed:            1,
		Workers:              *workers,
		Incremental:          *incremental,
		IncrementalThreshold: *incThreshold,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("battlesim: %d units, %.1f%% density (grid %.0f×%.0f), %s engine, %d ticks, %d workers\n",
		*units, *density*100, spec.Side(), spec.Side(), mode, *ticks, e.Workers())
	start := time.Now()
	for done := 0; done < *ticks; {
		step := *ticks - done
		if *report > 0 && step > *report {
			step = *report
		}
		if err := e.Run(step); err != nil {
			fatal(err)
		}
		done += step
		if *report > 0 {
			elapsed := time.Since(start)
			fmt.Printf("tick %5d  %8.2fs elapsed  %8.1f ticks/s  deaths=%d moves=%d blocked=%d\n",
				done, elapsed.Seconds(), float64(done)/elapsed.Seconds(),
				e.Stats.Deaths, e.Stats.Moves, e.Stats.MovesBlocked)
		}
	}
	total := time.Since(start)
	fmt.Printf("\ntotal: %.2fs for %d ticks (%.4fs/tick, %.1f ticks/s)\n",
		total.Seconds(), *ticks, total.Seconds()/float64(*ticks), float64(*ticks)/total.Seconds())
	if mode == engine.Indexed {
		s := e.Stats.IndexStats
		fmt.Printf("index work: %d builds, %d tree probes, %d kd probes, %d sweeps, %d scan fallbacks\n",
			s.IndexBuilds, s.TreeProbes, s.KDProbes, s.Sweeps, s.ScanProbes)
		if *incremental {
			fmt.Printf("maintenance: %d/%d ticks maintained, %.1f dirty rows/tick, %d reuses, %d patches, %d fallbacks\n",
				e.Stats.MaintainTicks, e.Stats.Ticks,
				float64(e.Stats.DirtyRows)/float64(max(1, e.Stats.MaintainTicks)),
				s.IndexReuses, s.IndexPatches, s.MaintainFallbacks)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "battlesim:", err)
	os.Exit(1)
}
