// Command battlesim runs the paper's battle simulation (Section 3.2) from
// the command line under either engine, as a session that can be
// checkpointed and resumed.
//
// Usage:
//
//	battlesim -units 2000 -ticks 500 -mode indexed -density 0.01 -seed 42
//	battlesim -units 10000 -workers 4              # sharded ticks, identical results
//	battlesim -ticks 500 -checkpoint world.ckpt -checkevery 100
//	battlesim -ticks 500 -resume world.ckpt        # continue where it stopped
//	battlesim -ticks 500 -commands input.txt       # scripted external commands
//
// A resumed run produces exactly the environment and counters the
// uninterrupted run would have: checkpoints carry the tick counter, the
// seed, the determinism-relevant options, the cumulative deaths/moves
// counters, and any pending or journaled external commands.
//
// The -commands file scripts external inputs, one per line (blank lines
// and #-comments are skipped); each is submitted once the session has
// completed <tick> ticks and applies at the start of the next one.
// Ticks are absolute, so a -resume run may reuse the same file: entries
// behind the resumed tick (already in the checkpoint's journal) are
// skipped with a notice.
//
// Line grammar:
//
//	<tick> spawn <key> <player> <unittype> <x> <y>
//	<tick> despawn <key>
//	<tick> set <key> <column> <value>
//	<tick> tune <constant> <value>
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/epicscale/sgl/internal/engine"
	"github.com/epicscale/sgl/internal/game"
	"github.com/epicscale/sgl/internal/geom"
	"github.com/epicscale/sgl/internal/table"
	"github.com/epicscale/sgl/internal/workload"
)

// config is the parsed command line.
type config struct {
	units        int
	ticks        int
	mode         engine.Mode
	density      float64
	seed         uint64
	formation    workload.Formation
	report       int
	workers      int
	incremental  bool
	incThreshold float64
	compact      bool
	checkpoint   string // write a checkpoint here every checkEvery ticks (and at the end)
	checkEvery   int
	resume       string // start from this checkpoint instead of a fresh army
	commands     string // scripted external-command file
}

func main() {
	var cfg config
	var modeName, formation string
	flag.IntVar(&cfg.units, "units", 1000, "number of units")
	flag.IntVar(&cfg.ticks, "ticks", 100, "clock ticks to simulate")
	flag.StringVar(&modeName, "mode", "indexed", "naive or indexed")
	flag.Float64Var(&cfg.density, "density", 0.01, "fraction of grid squares occupied")
	flag.Uint64Var(&cfg.seed, "seed", 42, "run seed")
	flag.StringVar(&formation, "formation", "lines", "lines or scattered")
	flag.IntVar(&cfg.report, "report", 25, "progress report interval in ticks (0 = none)")
	flag.IntVar(&cfg.workers, "workers", 0, "tick executor shards (0 = all cores, 1 = serial; results are identical)")
	flag.BoolVar(&cfg.incremental, "incremental", false, "patch per-tick indexes from the previous tick instead of rebuilding (identical results)")
	flag.Float64Var(&cfg.incThreshold, "incthreshold", 0, "dirty-fraction rebuild fallback (0 = default)")
	flag.BoolVar(&cfg.compact, "compact", false, "fold the applied journal into the checkpoint base at the end of every tick (flat checkpoints; no genesis replay)")
	flag.StringVar(&cfg.checkpoint, "checkpoint", "", "write a checkpoint to this path every -checkevery ticks and at the end")
	flag.IntVar(&cfg.checkEvery, "checkevery", 100, "checkpoint interval in ticks (with -checkpoint)")
	flag.StringVar(&cfg.resume, "resume", "", "resume from a checkpoint written by -checkpoint (ignores -units/-density/-seed/-mode/-formation)")
	flag.StringVar(&cfg.commands, "commands", "", "scripted external commands, one \"<tick> <op> <args>\" per line")
	flag.Parse()

	switch modeName {
	case "indexed":
		cfg.mode = engine.Indexed
	case "naive":
		cfg.mode = engine.Naive
	default:
		fmt.Fprintln(os.Stderr, "battlesim: -mode must be naive or indexed")
		os.Exit(2)
	}
	cfg.formation = workload.BattleLines
	if formation == "scattered" {
		cfg.formation = workload.Scattered
	}
	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "battlesim:", err)
		os.Exit(1)
	}
}

// timedCommand is one -commands file entry: submit cmd once the session
// has completed tick ticks (it applies at the start of the next one).
type timedCommand struct {
	tick int64
	cmd  engine.Command
}

// loadCommands parses a -commands file (see the package comment for the
// line grammar). Entries come back sorted by tick, submission order
// preserved within a tick.
func loadCommands(path string) ([]timedCommand, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cmds []timedCommand
	for ln, line := range strings.Split(string(data), "\n") {
		f := strings.Fields(line)
		if len(f) == 0 || strings.HasPrefix(f[0], "#") {
			continue
		}
		bad := func(format string, args ...any) error {
			return fmt.Errorf("%s:%d: %s", path, ln+1, fmt.Sprintf(format, args...))
		}
		tick, err := strconv.ParseInt(f[0], 10, 64)
		if err != nil || tick < 0 {
			return nil, bad("bad tick %q", f[0])
		}
		if len(f) < 2 {
			return nil, bad("missing command after tick %d", tick)
		}
		num := func(s string) (float64, error) { return strconv.ParseFloat(s, 64) }
		var cmd engine.Command
		switch {
		case f[1] == "spawn" && len(f) == 7:
			key, err := strconv.ParseInt(f[2], 10, 64)
			if err != nil || key < 0 {
				return nil, bad("bad spawn key %q", f[2])
			}
			player, err1 := strconv.Atoi(f[3])
			unittype, err2 := strconv.Atoi(f[4])
			x, err3 := num(f[5])
			y, err4 := num(f[6])
			if err1 != nil || err2 != nil || err3 != nil || err4 != nil ||
				player < 0 || player > 1 || unittype < game.Knight || unittype > game.Healer {
				return nil, bad("spawn wants <key> <player 0|1> <unittype 0|1|2> <x> <y>")
			}
			cmd = engine.Command{Op: engine.OpSpawn, Row: game.NewUnit(key, player, unittype, geom.Point{X: x, Y: y})}
		case f[1] == "despawn" && len(f) == 3:
			key, err := strconv.ParseInt(f[2], 10, 64)
			if err != nil {
				return nil, bad("bad despawn key %q", f[2])
			}
			cmd = engine.Command{Op: engine.OpDespawn, Key: key}
		case f[1] == "set" && len(f) == 5:
			key, err := strconv.ParseInt(f[2], 10, 64)
			v, err2 := num(f[4])
			if err != nil || err2 != nil {
				return nil, bad("set wants <key> <column> <value>")
			}
			cmd = engine.Command{Op: engine.OpSet, Key: key, Col: f[3], Val: v}
		case f[1] == "tune" && len(f) == 4:
			v, err := num(f[3])
			if err != nil {
				return nil, bad("tune wants <constant> <value>")
			}
			cmd = engine.Command{Op: engine.OpTune, Col: f[2], Val: v}
		default:
			return nil, bad("unknown or malformed command %q", strings.Join(f[1:], " "))
		}
		cmds = append(cmds, timedCommand{tick: tick, cmd: cmd})
	}
	sort.SliceStable(cmds, func(i, j int) bool { return cmds[i].tick < cmds[j].tick })
	return cmds, nil
}

// run drives one battlesim invocation. It is main minus flag parsing and
// process exit, so the checkpoint/resume smoke test can exercise the
// exact code path users do.
func run(cfg config, out io.Writer) error {
	prog, err := game.Compile()
	if err != nil {
		return err
	}
	tune := engine.Options{
		Workers:              cfg.workers,
		Incremental:          cfg.incremental,
		IncrementalThreshold: cfg.incThreshold,
		CompactJournal:       cfg.compact,
	}

	var commands []timedCommand
	if cfg.commands != "" {
		if commands, err = loadCommands(cfg.commands); err != nil {
			return err
		}
	}

	var sess *engine.Session
	if cfg.resume != "" {
		f, err := os.Open(cfg.resume)
		if err != nil {
			return err
		}
		// Checkpoints are self-contained since format v2: Open rebuilds
		// the program from the stream. Version-1 files predate that, so
		// fall back to the prog-supplied restore for them.
		sess, err = engine.Open(f, game.NewMechanics(), tune)
		if err != nil {
			if _, serr := f.Seek(0, io.SeekStart); serr == nil {
				if s2, rerr := engine.RestoreSession(f, prog, game.NewMechanics(), tune); rerr == nil {
					sess, err = s2, nil
				}
			}
		}
		f.Close()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "battlesim: resumed %d units at tick %d from %s\n",
			sess.Engine().Env().Len(), sess.Tick(), cfg.resume)
	} else {
		spec := workload.Spec{Units: cfg.units, Density: cfg.density, Seed: cfg.seed, Formation: cfg.formation}
		opts := tune
		opts.Mode = cfg.mode
		opts.Categoricals = game.Categoricals()
		opts.Seed = cfg.seed
		opts.Side = spec.Side()
		opts.MoveSpeed = 1
		e, err := engine.New(prog, game.NewMechanics(), workload.Generate(spec), opts)
		if err != nil {
			return err
		}
		sess = engine.NewSession(e)
		fmt.Fprintf(out, "battlesim: %d units, %.1f%% density (grid %.0f×%.0f), %s engine, %d ticks, %d workers\n",
			cfg.units, cfg.density*100, spec.Side(), spec.Side(), cfg.mode, cfg.ticks, e.Workers())
	}

	start := time.Now()
	startTick := sess.Tick()
	if cfg.report > 0 {
		endTick := startTick + int64(cfg.ticks)
		sess.OnTick(func(tick int64, stats engine.RunStats) {
			// Report on the interval and always on the final tick, so the
			// run's end-state counters appear even when -ticks is not a
			// multiple of -report.
			if (tick-startTick)%int64(cfg.report) != 0 && tick != endTick {
				return
			}
			elapsed := time.Since(start)
			fmt.Fprintf(out, "tick %5d  %8.2fs elapsed  %8.1f ticks/s  deaths=%d moves=%d blocked=%d\n",
				tick, elapsed.Seconds(), float64(tick-startTick)/elapsed.Seconds(),
				stats.Deaths, stats.Moves, stats.MovesBlocked)
		})
	}

	writeCheckpoint := func() error {
		if cfg.checkpoint == "" {
			return nil
		}
		// Staged write + fsync + rename-into-place (table.WriteFileAtomic):
		// a crash mid-write never corrupts the last good checkpoint.
		if err := table.WriteFileAtomic(cfg.checkpoint, func(f *os.File) error {
			return sess.Checkpoint(f)
		}); err != nil {
			return err
		}
		fmt.Fprintf(out, "checkpoint: tick %d → %s\n", sess.Tick(), cfg.checkpoint)
		return nil
	}

	// Scripted commands are submitted once the session reaches their
	// tick; ticks are absolute session ticks, so a -resume run picks up
	// mid-file with the SAME file that drove the earlier segment:
	// entries behind the starting tick were already submitted then (and
	// live in the checkpoint's journal), so they are skipped here, with
	// a notice so a genuinely mis-ticked file does not fail silently.
	cmdIdx := 0
	for cmdIdx < len(commands) && commands[cmdIdx].tick < startTick {
		cmdIdx++
	}
	if cmdIdx > 0 {
		fmt.Fprintf(out, "commands: skipping %d entries at ticks before %d (already covered by the resumed run's journal)\n",
			cmdIdx, startTick)
	}
	submitDue := func() error {
		cur := sess.Tick()
		for cmdIdx < len(commands) && commands[cmdIdx].tick == cur {
			if err := sess.Submit("battlesim", commands[cmdIdx].cmd); err != nil {
				return err
			}
			cmdIdx++
		}
		return nil
	}

	for done := 0; done < cfg.ticks; {
		if err := submitDue(); err != nil {
			return err
		}
		step := cfg.ticks - done
		if cfg.checkpoint != "" && cfg.checkEvery > 0 && step > cfg.checkEvery {
			step = cfg.checkEvery
		}
		// Stop at the next scripted command's tick so it is submitted at
		// exactly the boundary it names.
		if cmdIdx < len(commands) {
			if until := int(commands[cmdIdx].tick - sess.Tick()); until > 0 && step > until {
				step = until
			}
		}
		if err := sess.Step(step); err != nil {
			return err
		}
		done += step
		if done < cfg.ticks {
			if err := writeCheckpoint(); err != nil {
				return err
			}
		}
	}
	if err := submitDue(); err != nil { // entries naming the final tick stay pending (journaled + checkpointed)
		return err
	}
	if cmdIdx < len(commands) {
		fmt.Fprintf(out, "commands: %d entries named ticks beyond the run and were not submitted\n", len(commands)-cmdIdx)
	}
	if err := writeCheckpoint(); err != nil {
		return err
	}

	total := time.Since(start)
	stats := sess.Stats()
	fmt.Fprintf(out, "\ntotal: %.2fs for %d ticks (%.4fs/tick, %.1f ticks/s)\n",
		total.Seconds(), cfg.ticks, total.Seconds()/float64(cfg.ticks), float64(cfg.ticks)/total.Seconds())
	if cfg.commands != "" || stats.CommandsApplied+stats.CommandsRejected > 0 {
		fmt.Fprintf(out, "commands: %d applied, %d rejected, %d pending\n",
			stats.CommandsApplied, stats.CommandsRejected, len(sess.Pending()))
	}
	if s := stats.IndexStats; s.IndexBuilds > 0 {
		fmt.Fprintf(out, "index work: %d builds, %d tree probes, %d kd probes, %d sweeps, %d scan fallbacks\n",
			s.IndexBuilds, s.TreeProbes, s.KDProbes, s.Sweeps, s.ScanProbes)
		if cfg.incremental {
			fmt.Fprintf(out, "maintenance: %d/%d ticks maintained, %.1f dirty rows/tick, %d reuses, %d patches, %d fallbacks\n",
				stats.MaintainTicks, stats.Ticks,
				float64(stats.DirtyRows)/float64(max(1, stats.MaintainTicks)),
				s.IndexReuses, s.IndexPatches, s.MaintainFallbacks)
		}
	}
	return nil
}
