package main

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/epicscale/sgl/internal/engine"
	"github.com/epicscale/sgl/internal/game"
	"github.com/epicscale/sgl/internal/workload"
)

func baseConfig() config {
	return config{
		units:     80,
		ticks:     20,
		mode:      engine.Indexed,
		density:   0.02,
		seed:      7,
		formation: workload.BattleLines,
	}
}

// finalEnv re-runs the straight simulation to read its end state.
func finalEnv(t *testing.T, ticks int) *engine.Engine {
	t.Helper()
	prog, err := game.Compile()
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig()
	spec := workload.Spec{Units: cfg.units, Density: cfg.density, Seed: cfg.seed, Formation: cfg.formation}
	e, err := engine.New(prog, game.NewMechanics(), workload.Generate(spec), engine.Options{
		Mode:         cfg.mode,
		Categoricals: game.Categoricals(),
		Seed:         cfg.seed,
		Side:         spec.Side(),
		MoveSpeed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(ticks); err != nil {
		t.Fatal(err)
	}
	return e
}

// The end-to-end smoke for -checkpoint/-resume: a run checkpointed
// halfway and resumed must report exactly the death/move counters — and
// reach exactly the environment — of the straight run.
func TestCheckpointResumeSmoke(t *testing.T) {
	straight := finalEnv(t, 20)

	ckpt := filepath.Join(t.TempDir(), "world.ckpt")
	var out bytes.Buffer

	first := baseConfig()
	first.ticks = 11
	first.checkpoint = ckpt
	first.checkEvery = 4 // several mid-run checkpoints; the last write wins
	first.report = 0
	if err := run(first, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "checkpoint: tick 11") {
		t.Fatalf("missing final checkpoint line in output:\n%s", out.String())
	}

	second := baseConfig()
	second.ticks = 9
	second.resume = ckpt
	second.workers = 4 // resume under different parallelism: still identical
	second.report = 0
	out.Reset()
	if err := run(second, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "resumed 80 units at tick 11") {
		t.Fatalf("missing resume line in output:\n%s", out.String())
	}

	// Reload the checkpoint the resumed run started from and replay it to
	// compare states and counters against the straight run.
	prog, err := game.Compile()
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	resumed, err := engine.Restore(f, prog, game.NewMechanics(), engine.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Run(9); err != nil {
		t.Fatal(err)
	}
	if resumed.Stats.Deaths != straight.Stats.Deaths || resumed.Stats.Moves != straight.Stats.Moves {
		t.Fatalf("resumed counters deaths=%d moves=%d, straight run deaths=%d moves=%d",
			resumed.Stats.Deaths, resumed.Stats.Moves, straight.Stats.Deaths, straight.Stats.Moves)
	}
	a, b := straight.Env(), resumed.Env()
	if a.Len() != b.Len() {
		t.Fatalf("row counts differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Rows {
		for c := range a.Rows[i] {
			if math.Float64bits(a.Rows[i][c]) != math.Float64bits(b.Rows[i][c]) {
				t.Fatalf("row %d col %d differs: resumed run not byte-identical", i, c)
			}
		}
	}
}

// A fresh run with no checkpoint flags still works through the session
// path (regression for the main-loop refactor).
func TestPlainRun(t *testing.T) {
	cfg := baseConfig()
	cfg.report = 10
	var out bytes.Buffer
	if err := run(cfg, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"80 units", "total:", "index work:"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

// Resuming from a missing or corrupt file fails cleanly.
func TestResumeErrors(t *testing.T) {
	cfg := baseConfig()
	cfg.resume = filepath.Join(t.TempDir(), "nope.ckpt")
	if err := run(cfg, &bytes.Buffer{}); err == nil {
		t.Fatal("missing checkpoint accepted")
	}
}
