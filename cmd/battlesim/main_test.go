package main

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/epicscale/sgl/internal/engine"
	"github.com/epicscale/sgl/internal/game"
	"github.com/epicscale/sgl/internal/workload"
)

func baseConfig() config {
	return config{
		units:     80,
		ticks:     20,
		mode:      engine.Indexed,
		density:   0.02,
		seed:      7,
		formation: workload.BattleLines,
	}
}

// finalEnv re-runs the straight simulation to read its end state.
func finalEnv(t *testing.T, ticks int) *engine.Engine {
	t.Helper()
	prog, err := game.Compile()
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig()
	spec := workload.Spec{Units: cfg.units, Density: cfg.density, Seed: cfg.seed, Formation: cfg.formation}
	e, err := engine.New(prog, game.NewMechanics(), workload.Generate(spec), engine.Options{
		Mode:         cfg.mode,
		Categoricals: game.Categoricals(),
		Seed:         cfg.seed,
		Side:         spec.Side(),
		MoveSpeed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(ticks); err != nil {
		t.Fatal(err)
	}
	return e
}

// The end-to-end smoke for -checkpoint/-resume: a run checkpointed
// halfway and resumed must report exactly the death/move counters — and
// reach exactly the environment — of the straight run.
func TestCheckpointResumeSmoke(t *testing.T) {
	straight := finalEnv(t, 20)

	ckpt := filepath.Join(t.TempDir(), "world.ckpt")
	var out bytes.Buffer

	first := baseConfig()
	first.ticks = 11
	first.checkpoint = ckpt
	first.checkEvery = 4 // several mid-run checkpoints; the last write wins
	first.report = 0
	if err := run(first, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "checkpoint: tick 11") {
		t.Fatalf("missing final checkpoint line in output:\n%s", out.String())
	}

	second := baseConfig()
	second.ticks = 9
	second.resume = ckpt
	second.workers = 4 // resume under different parallelism: still identical
	second.report = 0
	out.Reset()
	if err := run(second, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "resumed 80 units at tick 11") {
		t.Fatalf("missing resume line in output:\n%s", out.String())
	}

	// Reload the checkpoint the resumed run started from and replay it to
	// compare states and counters against the straight run.
	prog, err := game.Compile()
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	resumed, err := engine.Restore(f, prog, game.NewMechanics(), engine.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Run(9); err != nil {
		t.Fatal(err)
	}
	if resumed.Stats.Deaths != straight.Stats.Deaths || resumed.Stats.Moves != straight.Stats.Moves {
		t.Fatalf("resumed counters deaths=%d moves=%d, straight run deaths=%d moves=%d",
			resumed.Stats.Deaths, resumed.Stats.Moves, straight.Stats.Deaths, straight.Stats.Moves)
	}
	a, b := straight.Env(), resumed.Env()
	if a.Len() != b.Len() {
		t.Fatalf("row counts differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Rows {
		for c := range a.Rows[i] {
			if math.Float64bits(a.Rows[i][c]) != math.Float64bits(b.Rows[i][c]) {
				t.Fatalf("row %d col %d differs: resumed run not byte-identical", i, c)
			}
		}
	}
}

// A fresh run with no checkpoint flags still works through the session
// path (regression for the main-loop refactor).
func TestPlainRun(t *testing.T) {
	cfg := baseConfig()
	cfg.report = 10
	var out bytes.Buffer
	if err := run(cfg, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"80 units", "total:", "index work:"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

// Resuming from a missing or corrupt file fails cleanly.
func TestResumeErrors(t *testing.T) {
	cfg := baseConfig()
	cfg.resume = filepath.Join(t.TempDir(), "nope.ckpt")
	if err := run(cfg, &bytes.Buffer{}); err == nil {
		t.Fatal("missing checkpoint accepted")
	}
}

// The -commands smoke: a scripted input file drives spawns, despawns,
// sets and tunes through the exact code path users run, the summary
// reports them, and the world reflects them (population back to the
// start after the spawn/despawn pair, one deterministic rejection from
// the bogus despawn).
func TestScriptedCommandsSmoke(t *testing.T) {
	dir := t.TempDir()
	cmds := filepath.Join(dir, "input.txt")
	const file = `
# scripted inputs for the smoke test
2 set 5 health 9
4 spawn 9001 0 1 40 40
6 despawn 9001
6 despawn 424242
8 tune _HEAL_AURA 5
`
	if err := os.WriteFile(cmds, []byte(file), 0o644); err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(dir, "world.ckpt")
	cfg := baseConfig()
	cfg.commands = cmds
	cfg.checkpoint = ckpt
	cfg.report = 0
	var out bytes.Buffer
	if err := run(cfg, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "commands: 4 applied, 1 rejected, 0 pending") {
		t.Fatalf("missing/incorrect command summary:\n%s", out.String())
	}

	// The checkpoint is self-contained: Open it and verify the journal
	// and the tuned constant came along.
	f, err := os.Open(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sess, err := engine.Open(f, game.NewMechanics(), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sess.Journal()); got != 5 {
		t.Fatalf("journal entries = %d, want 5", got)
	}
	if v, _ := sess.Engine().ConstValue("_HEAL_AURA"); v != 5 {
		t.Fatalf("tuned const = %v, want 5", v)
	}
	if sess.Engine().Env().Len() != 80 {
		t.Fatalf("population = %d, want 80", sess.Engine().Env().Len())
	}
}

// Command files that cannot be parsed, or that name ticks already in the
// past, fail loudly before the run starts.
func TestScriptedCommandsErrors(t *testing.T) {
	dir := t.TempDir()
	write := func(content string) string {
		t.Helper()
		p := filepath.Join(dir, "bad.txt")
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	for _, tc := range []struct{ name, content, want string }{
		{"bad-op", "1 explode 5", "unknown or malformed"},
		{"bad-tick", "x set 5 health 1", "bad tick"},
		{"tick-only", "7", "missing command"},
		{"short-spawn", "1 spawn 9", "unknown or malformed"},
		{"bad-unittype", "1 spawn 9 0 7 4 4", "spawn wants"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := baseConfig()
			cfg.commands = write(tc.content)
			err := run(cfg, &bytes.Buffer{})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
	// A syntactically fine file whose column fails engine validation.
	cfg := baseConfig()
	cfg.commands = write("1 set 5 nosuch 1")
	if err := run(cfg, &bytes.Buffer{}); err == nil || !strings.Contains(err.Error(), "no column") {
		t.Fatalf("err = %v, want engine validation error", err)
	}
}

// A -resume run may reuse the exact -commands file that drove the
// earlier segment: entries behind the resumed tick are skipped (they
// already live in the checkpoint's journal), later ones still apply.
func TestScriptedCommandsResumeSameFile(t *testing.T) {
	dir := t.TempDir()
	cmds := filepath.Join(dir, "input.txt")
	if err := os.WriteFile(cmds, []byte("2 set 5 health 9\n25 tune _HEAL_AURA 4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(dir, "world.ckpt")

	first := baseConfig()
	first.commands = cmds
	first.checkpoint = ckpt
	first.report = 0
	if err := run(first, &bytes.Buffer{}); err != nil { // runs ticks 0–20: only the tick-2 entry applies
		t.Fatal(err)
	}

	second := baseConfig()
	second.ticks = 10
	second.resume = ckpt
	second.commands = cmds
	second.report = 0
	var out bytes.Buffer
	if err := run(second, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "skipping 1 entries at ticks before 20") {
		t.Fatalf("missing skip notice:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "commands: 2 applied") { // tick-2 (from journal) + tick-25 entry
		t.Fatalf("tick-25 entry did not apply on resume:\n%s", out.String())
	}
}
