// Command sglvet runs the SGL diagnostics engine (internal/sgl/lint) over
// scripts and reports coded, positioned findings: SGL0xx correctness
// issues and SGL1xx performance classifications derived from the
// executor's own analyzers.
//
// Usage:
//
//	sglvet [-json] [-query] script.sgl...
//	sglvet -builtin          # vet the built-in battle script
//	sglvet -zoo              # vet the exec script zoo
//
// Exit status is 0 when every input is clean, 1 when any diagnostic was
// reported, 2 on usage or I/O errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/epicscale/sgl/internal/exec"
	"github.com/epicscale/sgl/internal/game"
	"github.com/epicscale/sgl/internal/sgl/lint"
)

// fileDiag is one diagnostic tagged with the input it came from, for the
// -json stream.
type fileDiag struct {
	File string `json:"file"`
	lint.Diagnostic
}

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	query := flag.Bool("query", false, "lint inputs as observation queries instead of behavior scripts")
	builtin := flag.Bool("builtin", false, "vet the built-in battle script instead of files")
	zoo := flag.Bool("zoo", false, "vet every program of the exec script zoo")
	flag.Parse()

	type input struct {
		name string
		src  string
	}
	var inputs []input
	switch {
	case *builtin:
		inputs = append(inputs, input{"builtin", game.Script})
	case *zoo:
		for _, p := range exec.Zoo {
			inputs = append(inputs, input{"zoo/" + p.Name, p.Src})
		}
	case flag.NArg() > 0:
		for _, path := range flag.Args() {
			data, err := os.ReadFile(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sglvet:", err)
				os.Exit(2)
			}
			inputs = append(inputs, input{path, string(data)})
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: sglvet [-json] [-query] script.sgl... | sglvet -builtin | sglvet -zoo")
		os.Exit(2)
	}

	opts := lint.Options{
		Mode:         lint.ModeScript,
		Schema:       game.Schema(),
		Consts:       game.Consts(),
		Categoricals: game.Categoricals(),
	}
	if *query {
		opts.Mode = lint.ModeQuery
		opts.Consts = nil // queries reference no game constants
	}
	if *zoo {
		opts.Consts = nil // zoo programs are schema-only by design
	}

	all := []fileDiag{} // non-nil so -json renders [] when clean
	for _, in := range inputs {
		for _, d := range lint.Lint(in.src, opts) {
			all = append(all, fileDiag{File: in.name, Diagnostic: d})
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(all); err != nil {
			fmt.Fprintln(os.Stderr, "sglvet:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range all {
			fmt.Printf("%s:%s\n", d.File, d.Diagnostic)
		}
	}
	if len(all) > 0 {
		os.Exit(1)
	}
}
