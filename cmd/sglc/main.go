// Command sglc is the SGL compiler front end: it parses and type-checks a
// script against the battle-simulation schema, prints the optimized query
// plan, and reports how the optimizer classified every aggregate and
// action definition (which index structure will serve it).
//
// Usage:
//
//	sglc [-explain] [-classify] [-no-opt] [-vet] script.sgl
//	sglc -builtin            # inspect the built-in battle script
//
// -vet additionally runs the lint diagnostics engine (the same rules as
// the sglvet command) and prints its findings after the plan.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/epicscale/sgl/internal/algebra"
	"github.com/epicscale/sgl/internal/exec"
	"github.com/epicscale/sgl/internal/game"
	"github.com/epicscale/sgl/internal/sgl/lint"
	"github.com/epicscale/sgl/internal/sgl/parser"
	"github.com/epicscale/sgl/internal/sgl/sem"
)

func main() {
	explain := flag.Bool("explain", true, "print the compiled query plan")
	classify := flag.Bool("classify", true, "print per-definition index classification")
	noOpt := flag.Bool("no-opt", false, "skip the algebraic optimizer")
	builtin := flag.Bool("builtin", false, "compile the built-in battle script instead of a file")
	vet := flag.Bool("vet", false, "run the lint diagnostics engine and print its findings")
	flag.Parse()

	var src string
	switch {
	case *builtin:
		src = game.Script
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		src = string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: sglc [-explain] [-classify] [-no-opt] script.sgl | sglc -builtin")
		os.Exit(2)
	}

	script, err := parser.Parse(src)
	if err != nil {
		fatal(err)
	}
	prog, err := sem.Check(script, game.Schema(), game.Consts())
	if err != nil {
		fatal(err)
	}
	fmt.Printf("ok: %d aggregate(s), %d action(s), %d function(s)\n\n",
		len(prog.Script.Aggs), len(prog.Script.Acts), len(prog.Script.Funcs))

	if *classify {
		an := exec.NewAnalyzer(prog, game.Categoricals())
		fmt.Println("aggregate classification:")
		for _, def := range prog.Script.Aggs {
			a := an.Agg(def)
			fmt.Printf("  %-28s indexable=%-5v axes=%d eqs=%d", def.Name, a.Indexable, len(a.Axes), len(a.Eqs))
			for i, out := range def.Outputs {
				fmt.Printf(" %s:%s", out.As, a.OutClass[i])
			}
			fmt.Println()
		}
		fmt.Println("action classification:")
		for _, def := range prog.Script.Acts {
			a := an.Act(def)
			fmt.Printf("  %-28s class=%-6s deferrable=%v\n", def.Name, a.Class, a.Deferrable)
		}
		fmt.Println()
	}

	if *explain {
		plan, err := algebra.Translate(prog)
		if err != nil {
			fatal(err)
		}
		if !*noOpt {
			algebra.Optimize(plan)
			fmt.Println("optimized plan:")
		} else {
			fmt.Println("unoptimized plan:")
		}
		fmt.Print(plan.Explain())
	}

	if *vet {
		diags := lint.Lint(src, lint.Options{
			Mode:         lint.ModeScript,
			Schema:       game.Schema(),
			Consts:       game.Consts(),
			Categoricals: game.Categoricals(),
		})
		fmt.Println()
		if len(diags) == 0 {
			fmt.Println("vet: clean")
		} else {
			fmt.Println("vet:")
			for _, d := range diags {
				fmt.Printf("  %s\n", d)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sglc:", err)
	os.Exit(1)
}
