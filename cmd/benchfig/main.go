// Command benchfig regenerates the paper's evaluation figures and tables
// (Section 6) as text tables.
//
// Usage:
//
//	benchfig -experiment fig10                 # Figure 10 scalability series
//	benchfig -experiment density               # unit-density sensitivity
//	benchfig -experiment capacity              # 10 ticks/s capacity per engine
//	benchfig -experiment ticks                 # proportionality to tick count
//	benchfig -experiment fig1                  # expressiveness-tier frontier
//	benchfig -experiment exec                  # streaming vs materializing executor
//	benchfig -experiment admission             # sharded vs locked command admission
//	benchfig -experiment cluster               # gateway scale-out, loadgen over a fleet
//	benchfig -experiment all -quick            # everything, reduced sizes
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/epicscale/sgl/internal/cluster"
	"github.com/epicscale/sgl/internal/engine"
	"github.com/epicscale/sgl/internal/metrics"
)

func main() {
	experiment := flag.String("experiment", "fig10", "fig10, density, capacity, ticks, fig1, exec, admission, cluster, or all")
	quick := flag.Bool("quick", false, "smaller sizes and fewer measured ticks")
	measure := flag.Int("measure", 0, "override measured ticks per point (0 = default)")
	flag.Parse()

	r, err := metrics.NewRunner()
	if err != nil {
		fatal(err)
	}

	run := func(name string) {
		switch name {
		case "fig10":
			fig10(r, *quick, *measure)
		case "density":
			density(r, *quick, *measure)
		case "capacity":
			capacity(r, *quick, *measure)
		case "ticks":
			ticks(r, *quick, *measure)
		case "fig1":
			fig1(r, *quick, *measure)
		case "exec":
			execCompare(r, *quick, *measure)
		case "admission":
			admission(r, *quick, *measure)
		case "cluster":
			clusterScaleOut(*quick)
		default:
			fmt.Fprintf(os.Stderr, "benchfig: unknown experiment %q\n", name)
			os.Exit(2)
		}
	}
	if *experiment == "all" {
		for _, name := range []string{"fig10", "density", "capacity", "ticks", "fig1", "exec", "admission", "cluster"} {
			run(name)
			fmt.Println()
		}
		return
	}
	run(*experiment)
}

func pick(measure, quickDefault, fullDefault int, quick bool) int {
	if measure > 0 {
		return measure
	}
	if quick {
		return quickDefault
	}
	return fullDefault
}

func fig10(r *metrics.Runner, quick bool, measure int) {
	fmt.Println("=== Figure 10: total time vs number of units (constant 1% density) ===")
	sizes := []int{500, 1000, 2000, 4000, 8000, 12000, 14000}
	naiveCap := 4000
	if quick {
		sizes = []int{250, 500, 1000, 2000, 4000}
		naiveCap = 2000
	}
	rows, err := r.Fig10(sizes, 0.01, pick(measure, 3, 10, quick), naiveCap)
	if err != nil {
		fatal(err)
	}
	metrics.WriteFig10(os.Stdout, rows)
	fmt.Println("(naive points above the cap are omitted: quadratic growth)")
}

func density(r *metrics.Runner, quick bool, measure int) {
	fmt.Println("=== Varying unit density (500 units, 0.5%–8%) ===")
	n := 500
	densities := []float64{0.005, 0.01, 0.02, 0.04, 0.08}
	rows, err := r.Density(n, densities, pick(measure, 3, 10, quick))
	if err != nil {
		fatal(err)
	}
	metrics.WriteDensity(os.Stdout, rows)
}

func capacity(r *metrics.Runner, quick bool, measure int) {
	fmt.Println("=== Capacity at 10 ticks per second (100 ms budget) ===")
	hi := 40000
	if quick {
		hi = 16000
	}
	for _, mode := range []engine.Mode{engine.Naive, engine.Indexed} {
		modeHi := hi
		if mode == engine.Naive && modeHi > 3000 {
			// Probing the quadratic engine at five-digit sizes would take
			// minutes per point; its capacity is far below 3000 anyway.
			modeHi = 3000
		}
		n, err := r.Capacity(mode, 100*time.Millisecond, 100, modeHi, pick(measure, 2, 5, quick))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-8s sustains ~%d units at 10 ticks/s\n", mode, n)
	}
}

func ticks(r *metrics.Runner, quick bool, measure int) {
	fmt.Println("=== Proportionality: total time vs tick count (2000 units, indexed) ===")
	counts := []int{50, 100, 200, 400}
	if quick {
		counts = []int{20, 40, 80}
	}
	_ = measure
	rows, err := r.Proportionality(engine.Indexed, 2000, counts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-8s %14s %14s\n", "ticks", "total sec", "sec/tick")
	for _, row := range rows {
		fmt.Printf("%-8d %14.3f %14.6f\n", row.Ticks, row.TotalSeconds, row.SecondsPerTick)
	}
}

func fig1(r *metrics.Runner, quick bool, measure int) {
	fmt.Println("=== Figure 1: expressiveness tiers vs sustainable army size (10 ticks/s) ===")
	hi := 40000
	if quick {
		hi = 8000
	}
	rows, err := r.Fig1(100*time.Millisecond, 100, hi, pick(measure, 2, 4, quick))
	if err != nil {
		fatal(err)
	}
	metrics.WriteFig1(os.Stdout, rows)
}

func execCompare(r *metrics.Runner, quick bool, measure int) {
	fmt.Println("=== Streaming vs materializing executor (battle, indexed, 1% density) ===")
	sizes := []int{2000, 10000}
	if quick {
		sizes = []int{1000, 4000}
	}
	for _, n := range sizes {
		rows, err := r.ExecComparison(n, 0.01, pick(measure, 3, 10, quick))
		if err != nil {
			fatal(err)
		}
		metrics.WriteExec(os.Stdout, rows)
	}
	fmt.Println("(outcomes are bit-identical; the delta is executor overhead only.")
	fmt.Println(" effect allocs/pass isolates the effect query — whole-tick allocation")
	fmt.Println(" counts are dominated by per-tick index rebuilds)")
}

func admission(r *metrics.Runner, quick bool, measure int) {
	fmt.Println("=== Sharded vs locked command admission (2000 units, indexed) ===")
	perRound := 65536
	if quick {
		perRound = 8192
	}
	rows, err := r.Admission([]int{1, 2, 4, 8}, perRound, pick(measure, 2, 5, quick))
	if err != nil {
		fatal(err)
	}
	metrics.WriteAdmission(os.Stdout, rows)
	fmt.Println("(same commands, same ticks; the delta is the admission path —")
	fmt.Println(" lock contention plus the out-of-order canonical inserts that")
	fmt.Println(" interleaved origins force on the serialized path)")
}

func clusterScaleOut(quick bool) {
	fmt.Println("=== Cluster scale-out: loadgen through sglgw, constant per-node load ===")
	cfg := cluster.ExperimentConfig{
		FleetSizes:    []int{1, 2},
		WorldsPerNode: 8,
		Units:         500,
		Density:       0.01,
		Seed:          42,
		TickRate:      10,
		Spectators:    2,
		Actors:        1,
		Duration:      5 * time.Second,
	}
	if quick {
		cfg.WorldsPerNode, cfg.Units, cfg.Duration = 4, 200, 1500*time.Millisecond
	}
	rows, err := cluster.Experiment(cfg)
	if err != nil {
		fatal(err)
	}
	metrics.WriteCluster(os.Stdout, rows)
	fmt.Println("(worlds scale with the fleet, per-node load is constant; linear")
	fmt.Println(" ticks/s across rows means the gateway's routing hop is off the")
	fmt.Println(" critical path and placement actually spreads the sessions)")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchfig:", err)
	os.Exit(1)
}
