// Command sglgw is the cluster gateway: it fronts a static fleet of
// sgld nodes, places each new session on a node by rendezvous hashing
// (least-loaded tie-break, dead nodes skipped), and proxies the whole
// /v1/sessions tree — including SSE subscriptions and journal
// long-polls — to the owning node. Clients speak to the cluster exactly
// as they would to one daemon (contract #6: routed ≡ direct).
//
//	sglgw -addr :7080 -nodes http://10.0.0.1:7070,http://10.0.0.2:7070
//
//	curl -X POST localhost:7080/v1/sessions -d '{"name":"alpha","units":2000}'
//	curl localhost:7080/gw/nodes
//	curl -X POST localhost:7080/gw/migrate -d '{"session":"alpha","target":"node1"}'
//
// Nodes may be named explicitly with name=url entries
// (-nodes east=http://10.0.0.1:7070,west=http://10.0.0.2:7070);
// bare URLs get node0, node1, … in flag order. Names feed the
// rendezvous hash, so keep them stable across gateway restarts — the
// gateway relearns existing placements lazily (adopt-on-miss), but new
// placements follow the names.
//
// See docs/CLI.md for the flag reference and docs/ARCHITECTURE.md for
// the cluster tier's design.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/epicscale/sgl/internal/cluster"
)

func main() {
	var (
		addr  = flag.String("addr", ":7080", "HTTP listen address")
		nodes = flag.String("nodes", "", "comma-separated sgld nodes: url or name=url (required)")
		probe = flag.Duration("probe", 2*time.Second, "health probe cadence")
	)
	flag.Parse()

	if err := run(*addr, *nodes, *probe, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sglgw:", err)
		os.Exit(1)
	}
}

// parseNodes turns the -nodes flag into the fleet: "url" entries are
// named node0, node1, … in order; "name=url" entries name themselves.
func parseNodes(raw string) ([]cluster.Node, error) {
	var out []cluster.Node
	for i, entry := range strings.Split(raw, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, url, named := strings.Cut(entry, "=")
		if !named {
			name, url = fmt.Sprintf("node%d", i), entry
		}
		out = append(out, cluster.Node{Name: name, URL: strings.TrimSuffix(url, "/")})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-nodes needs at least one sgld URL")
	}
	return out, nil
}

// run drives one sglgw invocation (main minus flag parsing and exit, so
// tests can call it).
func run(addr, rawNodes string, probe time.Duration, out io.Writer) error {
	nodes, err := parseNodes(rawNodes)
	if err != nil {
		return err
	}
	gw, err := cluster.New(cluster.Config{Nodes: nodes, ProbeEvery: probe})
	if err != nil {
		return err
	}
	gw.Start()
	defer gw.Close()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	alive := 0
	for _, ns := range gw.NodeStatuses() {
		if ns.Alive {
			alive++
		}
	}
	fmt.Fprintf(out, "sglgw: serving on http://%s, fronting %d nodes (%d alive)\n", ln.Addr(), len(nodes), alive)

	httpSrv := &http.Server{Handler: gw}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		fmt.Fprintf(out, "sglgw: %v, shutting down\n", s)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return httpSrv.Shutdown(ctx)
}
