// Command sglvet-go runs the determinism analyzers (internal/lint) as a
// `go vet -vettool`. It speaks the unitchecker protocol cmd/go expects,
// reimplemented on the standard library alone (x/tools is not a
// dependency of this repo):
//
//   - `sglvet-go -V=full` prints a version line whose buildID is the
//     sha256 of the executable, so the go command can cache vet results
//     per tool build.
//   - `sglvet-go -flags` prints the tool's flags as JSON, so `go vet`
//     can validate the flags a user passes.
//   - `sglvet-go [flags] <unit>.cfg` — the per-package invocation: the
//     config file (JSON) names the Go files, the import map, and the
//     export-data file of every dependency. The tool parses and
//     type-checks the package, runs the analyzers, writes the (empty —
//     the analyzers are factless) .vetx output, prints diagnostics to
//     stderr as file:line:col: messages, and exits nonzero if any.
//
// Only determinism-critical packages (internal/lint.Critical) are
// analyzed; everything else vets clean immediately, so
// `go vet -vettool=$(which sglvet-go) ./...` is cheap repo-wide.
//
// Usage:
//
//	go build -o bin/sglvet-go ./cmd/sglvet-go
//	go vet -vettool=bin/sglvet-go ./...
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"strings"

	"github.com/epicscale/sgl/internal/lint"
)

// config mirrors the JSON vet configuration cmd/go writes for each
// package unit (the unitchecker wire format). Fields this tool does not
// consume are omitted; unknown JSON keys are ignored by encoding/json.
type config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// versionFlag implements the -V=full handshake: print a line whose
// buildID term is the hash of this executable, then exit. The go
// command folds it into its action cache key, so rebuilding the tool
// invalidates cached vet results.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s", s)
	}
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, string(h.Sum(nil)))
	os.Exit(0)
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("sglvet-go: ")

	analyzers := lint.Analyzers()
	flag.Var(versionFlag{}, "V", "print version and exit")
	printflags := flag.Bool("flags", false, "print analyzer flags in JSON")
	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		enabled[a.Name] = flag.Bool(a.Name, false, a.Doc)
	}
	flag.Parse()

	if *printflags {
		printFlags()
		return
	}

	// If the user named analyzers on the go vet command line, run only
	// those; otherwise run the whole suite (the multichecker convention).
	var run []*lint.Analyzer
	for _, a := range analyzers {
		if *enabled[a.Name] {
			run = append(run, a)
		}
	}
	if len(run) == 0 {
		run = analyzers
	}

	args := flag.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		log.Fatalf(`invoking sglvet-go directly is unsupported; use "go vet -vettool=$(which sglvet-go)"`)
	}
	if err := runUnit(args[0], run); err != nil {
		log.Fatal(err)
	}
}

// printFlags emits the flag set as the JSON array `go vet` parses to
// validate user-provided flags.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	flags := []jsonFlag{}
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// runUnit processes one package unit: load the config, type-check,
// analyze if the package is determinism-critical, write the vetx
// output, and exit nonzero on findings.
func runUnit(cfgFile string, analyzers []*lint.Analyzer) error {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return err
	}
	var cfg config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return fmt.Errorf("cannot decode JSON config file %s: %v", cfgFile, err)
	}

	// The analyzers carry no facts, but cmd/go expects the output file
	// to exist to cache the unit; write it before any early exit.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("sglvet-go: no facts\n"), 0o666); err != nil {
			return fmt.Errorf("cannot write vetx output: %v", err)
		}
	}
	// Facts-only invocations exist to feed downstream units; with no
	// facts there is nothing to do. Non-critical packages vet clean by
	// definition of the suite.
	if cfg.VetxOnly || !lint.Critical(cfg.ImportPath) {
		return nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil
			}
			return err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// path is a resolved package path, not a source import path.
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		importPath, ok := cfg.ImportMap[importPath] // resolve vendoring etc.
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(importPath)
	})
	tc := &types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil
		}
		return err
	}

	exit := 0
	for _, a := range analyzers {
		pass := &lint.Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			Report: func(d lint.Diagnostic) {
				fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
				exit = 1
			},
		}
		if err := a.Run(pass); err != nil {
			return fmt.Errorf("analyzer %s: %v", a.Name, err)
		}
	}
	os.Exit(exit)
	return nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
